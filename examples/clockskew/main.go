// Clockskew: why the paper measures the way it does.
//
// The paper's §2 notes a technical difficulty: "the allocated nodes are
// often not time synchronized, each having its own clock". This example
// shows what goes wrong if you time a collective naively — subtracting a
// start timestamp on one node from an end timestamp on another — and how
// the paper's procedure (per-rank averages over a k-loop, then a maximum
// reduce) eliminates the skew.
package main

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func main() {
	const p, msg = 32, 1024
	mach := machine.SP2() // up to ±50 µs of per-node clock offset

	// Naive cross-node timing: rank 0 stamps "start", the last rank
	// stamps "end" after the broadcast, and we subtract. The skew
	// between the two nodes' clocks lands directly in the result.
	var naive sim.Duration
	err := mpi.Run(mach, p, 1, func(c *mpi.Comm) {
		c.Barrier()
		var t0 sim.Time
		if c.Rank() == 0 {
			t0 = c.Wtime() // rank 0's clock
		}
		var buf []byte
		if c.Rank() == 0 {
			buf = make([]byte, msg)
		}
		c.Bcast(0, buf)
		if c.Rank() == p-1 {
			// end on a DIFFERENT node's clock
			end := c.Wtime()
			startBytes := c.Recv(0, 99)
			start := sim.Time(int64(startBytes[0]) | int64(startBytes[1])<<8 |
				int64(startBytes[2])<<16 | int64(startBytes[3])<<24 |
				int64(startBytes[4])<<32)
			naive = end.Sub(start)
		}
		if c.Rank() == 0 {
			v := int64(t0)
			c.Send(p-1, 99, []byte{
				byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24), byte(v >> 32)})
		}
	})
	if err != nil {
		panic(err)
	}

	// The paper's procedure: each rank times its own k-loop on its own
	// clock (skew cancels in the subtraction), then the maximum is taken.
	s := measure.MeasureOp(mach, machine.OpBroadcast, p, msg, measure.Paper())

	fmt.Printf("naive cross-node timing:   %8.1f µs  (skew-contaminated)\n", sim.Duration(naive).Micros())
	fmt.Printf("paper's procedure:         %8.1f µs  (per-rank loop + max-reduce)\n", s.Micros)
	fmt.Printf("per-rank spread this run:  min %.1f / mean %.1f / max %.1f µs\n",
		s.RankMin, s.RankMean, s.Micros)
	fmt.Println("\nThe naive number includes the clock offset between two nodes and the")
	fmt.Println("message that shipped the timestamp; the looped per-rank measurement")
	fmt.Println("uses each clock only against itself.")
}
