// STAP: the radar workload behind the paper's measurements — "The MPI
// performance data are obtained from the STAP benchmark experiments
// jointly performed at the USC and HKU", sponsored by MIT Lincoln
// Laboratory.
//
// This example runs the full miniature space-time adaptive processing
// pipeline from internal/stap on all three simulated machines:
//
//  1. Doppler filtering — real FFTs over the pulse dimension
//  2. Corner turn       — the famous alltoall transpose of the data cube
//  3. Adaptive weights  — covariance allreduce + complex solve
//  4. Beamforming       — apply the weights
//  5. CFAR detection    — threshold + gather of detections
//
// Two synthetic targets are injected; every machine must find exactly
// them. The per-stage timing shows where each machine's communication
// character bites — the corner turn (total exchange) dominates, which is
// why the paper's alltoall expressions matter for STAP sizing.
package main

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/stap"
)

func main() {
	const p = 16
	prm := stap.Params{
		Ranges: 512, Pulses: 128, Channels: 8,
		CFARThreshold: 12, DiagonalLoad: 1,
	}
	targets := []stap.Target{
		{Range: 101, DopplerBin: 17, Amplitude: 14},
		{Range: 365, DopplerBin: 90, Amplitude: 14},
	}

	fmt.Printf("STAP CPI: %d gates × %d pulses × %d channels on %d nodes\n\n",
		prm.Ranges, prm.Pulses, prm.Channels, p)
	for _, mach := range machine.All() {
		res, err := stap.Run(mach, p, prm, targets, 1)
		if err != nil {
			panic(err)
		}
		ts := res.Times
		fmt.Printf("%-8s total %9v   comm %9v (%4.1f%%)\n",
			mach.Name(), ts.Total, ts.CommTime(),
			100*float64(ts.CommTime())/float64(ts.Total))
		fmt.Printf("         doppler %v | corner-turn %v | weights %v | beamform %v | cfar %v\n",
			ts.Doppler, ts.CornerTurn, ts.Weights, ts.Beamform, ts.CFAR)
		fmt.Printf("         detections:")
		for _, d := range res.Detections {
			fmt.Printf(" (bin %d, gate %d, snr %.0f)", d.DopplerBin, d.Range, d.SNR)
		}
		fmt.Println()
		fmt.Println()
	}
	fmt.Println("The corner turn's total exchange dominates communication; its cost")
	fmt.Println("ordering (T3D < Paragon < SP2 for these block sizes) follows the")
	fmt.Println("paper's Table 3, while compute time follows the nodes' MFLOP rates.")
}
