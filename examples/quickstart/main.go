// Quickstart: allocate a simulated multicomputer, run MPI collectives on
// it, and time them the way the paper does.
package main

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func main() {
	// A 16-node Cray T3D. SP2() and Paragon() work the same way.
	mach := machine.T3D()

	// Run an SPMD program: every rank executes the body, blocking MPI
	// calls and all — the simulator keeps virtual time.
	var bcastDone, alltoallDone sim.Time
	err := mpi.Run(mach, 16, 1, func(c *mpi.Comm) {
		// Broadcast 4 KB from rank 0.
		var msg []byte
		if c.Rank() == 0 {
			msg = make([]byte, 4096)
		}
		msg = c.Bcast(0, msg)
		c.Barrier()
		if c.Rank() == 0 {
			bcastDone = c.Proc().Now()
		}

		// Total exchange: 1 KB to every peer.
		blocks := make([][]byte, c.Size())
		for i := range blocks {
			blocks[i] = make([]byte, 1024)
		}
		c.Alltoall(blocks)
		c.Barrier()
		if c.Rank() == 0 {
			alltoallDone = c.Proc().Now()
		}

		// A global sum, as applications do.
		local := mpi.EncodeFloats([]float32{float32(c.Rank())})
		sum := mpi.DecodeFloats(c.Allreduce(local, mpi.Sum, mpi.Float))
		if c.Rank() == 0 && sum[0] != 120 {
			panic("bad sum")
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("T3D/16: broadcast(4KB) + barrier finished at %v\n", bcastDone)
	fmt.Printf("T3D/16: alltoall(1KB) + barrier finished at  %v\n", alltoallDone)

	// The measurement harness applies the paper's full procedure
	// (warm-up discard, k-iteration loop, max-reduce over ranks).
	s := measure.MeasureOp(mach, machine.OpAlltoall, 16, 1024, measure.Paper())
	fmt.Printf("paper procedure: T(1KB, 16) = %.1f µs for the T3D total exchange\n", s.Micros)
}
