// Quickstart: allocate a simulated multicomputer, run MPI collectives on
// it, and time them the way the paper does.
package main

import (
	"context"
	"fmt"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func main() {
	// A 16-node Cray T3D. SP2() and Paragon() work the same way.
	mach := machine.T3D()

	// Run an SPMD program: every rank executes the body, blocking MPI
	// calls and all — the simulator keeps virtual time.
	var bcastDone, alltoallDone sim.Time
	err := mpi.Run(mach, 16, 1, func(c *mpi.Comm) {
		// Broadcast 4 KB from rank 0.
		var msg []byte
		if c.Rank() == 0 {
			msg = make([]byte, 4096)
		}
		msg = c.Bcast(0, msg)
		c.Barrier()
		if c.Rank() == 0 {
			bcastDone = c.Proc().Now()
		}

		// Total exchange: 1 KB to every peer.
		blocks := make([][]byte, c.Size())
		for i := range blocks {
			blocks[i] = make([]byte, 1024)
		}
		c.Alltoall(blocks)
		c.Barrier()
		if c.Rank() == 0 {
			alltoallDone = c.Proc().Now()
		}

		// A global sum, as applications do.
		local := mpi.EncodeFloats([]float32{float32(c.Rank())})
		sum := mpi.DecodeFloats(c.Allreduce(local, mpi.Sum, mpi.Float))
		if c.Rank() == 0 && sum[0] != 120 {
			panic("bad sum")
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("T3D/16: broadcast(4KB) + barrier finished at %v\n", bcastDone)
	fmt.Printf("T3D/16: alltoall(1KB) + barrier finished at  %v\n", alltoallDone)

	// The estimation backends answer the same question two ways: the
	// sim backend applies the paper's full measurement procedure
	// (warm-up discard, k-iteration loop, max-reduce over ranks); the
	// analytic backend evaluates the paper's Table 3 expression in
	// closed form, no simulation at all.
	algs := mpi.DefaultAlgorithms(mach)
	measured, err := estimate.Sim{}.Estimate(context.Background(), mach, machine.OpAlltoall, algs, 16, 1024, measure.Paper())
	if err != nil {
		panic(err)
	}
	predicted, err := estimate.PaperAnalytic().Estimate(context.Background(), mach, machine.OpAlltoall, algs, 16, 1024, measure.Paper())
	if err != nil {
		panic(err)
	}
	fmt.Printf("paper procedure (sim backend):      T(1KB, 16) = %.1f µs for the T3D total exchange\n",
		measured.Sample.Micros)
	fmt.Printf("Table 3 fit (analytic backend):     T(1KB, 16) = %.1f µs — predicted without simulating\n",
		predicted.Sample.Micros)
}
