// Tradeoff: use the paper's closed-form expressions to pick a machine
// size — the "trade-offs between divided computation and collective
// communication" the abstract says the findings are for.
//
// A data-parallel solver has 2 s of serial arithmetic per step and one
// total exchange per step whose per-pair message shrinks as the data
// divides. More nodes cut the compute linearly but push the O(p)
// alltoall startup up: somewhere in between is the sweet spot, and it
// differs per machine.
package main

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/model"
)

func main() {
	pr := model.FromPaper()
	w := model.Workload{
		SerialMicros: 2e6,
		Op:           machine.OpAlltoall,
		BytesPerPair: func(p int) int { return 8 << 20 / (p * p) }, // 8 MB matrix divided p×p
		Steps:        100,
	}
	candidates := []int{2, 4, 8, 16, 32, 64, 128}

	for _, mach := range []string{"SP2", "T3D", "Paragon"} {
		cands := candidates
		if mach == "T3D" {
			cands = candidates[:6] // the study had 64 T3D nodes
		}
		best, t := w.BestSize(pr, mach, cands)
		fmt.Printf("%-8s best machine size p=%-3d  job time %8.2f s  (comm %4.1f%% per step)\n",
			mach, best, t/1e6, 100*w.CommFraction(pr, mach, best))
		for _, p := range cands {
			fmt.Printf("    p=%-3d  step %9.1f µs  comm %9.1f µs\n",
				p, w.StepTime(pr, mach, p),
				w.StepTime(pr, mach, p)*w.CommFraction(pr, mach, p))
		}
	}
	fmt.Println("\nNote how the Paragon's long NX startup pushes its optimum toward")
	fmt.Println("fewer nodes than the T3D's — ranking machines by one collective at")
	fmt.Println("one size does not predict another, which is the paper's §8 warning.")
}
