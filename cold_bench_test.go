package repro_test

import (
	"testing"

	"repro/internal/coll"
	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// --- Cold-path benchmarks ---------------------------------------------
// Every warm estimate is gated on a cold pass somewhere: the sim kernel
// behind it, the full sim sweep feeding the caches, and the calibration
// sweeps feeding the Calibrated backend. These quantify all three; BENCH.md
// tracks the numbers per commit.

// BenchmarkKernelEvents measures the raw event engine: timer callbacks
// (one self-rescheduling closure) and process wakeups (sleep/wake cycles
// through the scheduler), the two event flavors every simulation is made
// of.
func BenchmarkKernelEvents(b *testing.B) {
	b.Run("callback", func(b *testing.B) {
		k := sim.New(1)
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < b.N {
				k.After(1, tick)
			}
		}
		k.After(1, tick)
		b.ResetTimer()
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("proc-wakeup", func(b *testing.B) {
		// Four interleaved sleepers: every wakeup reschedules through the
		// event queue and (in the contended case) switches processes.
		k := sim.New(1)
		per := b.N/4 + 1
		for i := 0; i < 4; i++ {
			k.Go("", func(p *sim.Proc) {
				for j := 0; j < per; j++ {
					p.Sleep(1)
				}
			})
		}
		b.ResetTimer()
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	})
}

// coldSpec is cmd/sweep's default grid under its default methodology:
// the 788-scenario surface the ISSUE's cold-path target is measured on.
func coldSpec(tb testing.TB) []sweep.Scenario {
	tb.Helper()
	spec := sweep.Spec{
		Algorithms: sweep.AllAlgorithms(machine.Ops),
		Sizes:      []int{8, 32},
		Config:     measure.Fast(),
	}
	scns, err := spec.Expand()
	if err != nil {
		tb.Fatal(err)
	}
	return scns
}

// BenchmarkColdSweep runs the default 788-scenario grid through the sim
// backend with no cache — the cold pass every fresh deployment (or
// preset edit) pays before warm serving takes over. Run with
// -benchtime 1x for a single cold pass.
func BenchmarkColdSweep(b *testing.B) {
	scns := coldSpec(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		(&sweep.Runner{Backend: estimate.Sim{Memo: estimate.NewSampleMemo()}}).Run(scns)
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(len(scns))*float64(b.N)/secs, "scenarios/s")
	}
}

// calibrationTriples enumerates every (machine, op, algorithm variant)
// triple of the default grid, the cold-calibration workload of the
// Calibrated backend.
func calibrationTriples() (out []struct {
	mach *machine.Machine
	op   machine.Op
	alg  string
}) {
	for _, mach := range machine.All() {
		for _, op := range machine.Ops {
			algs := coll.Algorithms(string(op))
			if op == machine.OpBarrier && mach.HardwareBarrier() {
				algs = append(append([]string(nil), algs...), coll.AlgHardware)
			}
			for _, alg := range algs {
				out = append(out, struct {
					mach *machine.Machine
					op   machine.Op
					alg  string
				}{mach, op, alg})
			}
		}
	}
	return out
}

// BenchmarkCalibrationCold calibrates every triple of the default grid
// from scratch — the measure-then-fit cost the expression cache
// amortizes away in real use. "sequential" fits triple by triple (the
// pre-pool shape), "pooled" runs the Precalibrate worker pool, and
// "adaptive" adds the early-stopping planner. Run with -benchtime 1x
// for one full cold calibration per variant.
func BenchmarkCalibrationCold(b *testing.B) {
	raw := calibrationTriples()
	triples := make([]estimate.Triple, len(raw))
	for i, tr := range raw {
		triples[i] = estimate.Triple{Machine: tr.mach, Op: tr.op, Alg: tr.alg}
	}
	fresh := func() *estimate.Calibrated {
		return &estimate.Calibrated{
			Config: measure.Fast(), Sizes: []int{8, 32},
			Memo: estimate.NewSampleMemo(),
		}
	}
	report := func(b *testing.B) {
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(len(triples))*float64(b.N)/secs, "triples/s")
		}
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := fresh()
			for _, tr := range triples {
				c.Expression(tr.Machine, tr.Op, tr.Alg)
			}
		}
		report(b)
	})
	b.Run("pooled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fresh().Precalibrate(triples, 0)
		}
		report(b)
	})
	b.Run("adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := fresh()
			c.Planner = estimate.Planner{Adaptive: true}
			c.Precalibrate(triples, 0)
		}
		report(b)
	})
}
