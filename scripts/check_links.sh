#!/usr/bin/env bash
# check_links.sh — verify that relative markdown links in the tracked
# docs point at files that exist in the repository. External links
# (http/https/mailto) and pure #anchors are skipped so the check stays
# hermetic; CI gates on it.
#
#   scripts/check_links.sh            # exits non-zero on a broken link
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
shopt -s nullglob
files=(README.md ROADMAP.md BENCH.md CHANGES.md PAPER.md PAPERS.md SNIPPETS.md ISSUE.md docs/*.md)
for f in "${files[@]}"; do
	[ -f "$f" ] || continue
	while IFS= read -r target; do
		case "$target" in
		http://* | https://* | mailto:* | \#*) continue ;;
		esac
		path="${target%%#*}"
		[ -n "$path" ] || continue
		# Resolve like a markdown renderer does: relative to the file
		# containing the link, never the repo root.
		base="$(dirname "$f")"
		if [ ! -e "$base/$path" ]; then
			echo "check_links: $f: broken link -> $target" >&2
			fail=1
		fi
	done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done
if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "check_links: all relative links resolve" >&2
