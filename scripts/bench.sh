#!/usr/bin/env bash
# bench.sh — run the tracked benchmarks once and emit a JSON record.
#
#   scripts/bench.sh            # print the record to stdout
#   scripts/bench.sh out.json   # also write it to out.json
#
# The record carries the commit, the raw `go test -bench` output, and
# the date; CI uploads it as BENCH_<sha>.json so per-commit numbers
# accumulate as artifacts. Append headline rows to BENCH.md by hand (or
# from the artifact) when a commit moves them.
set -euo pipefail
cd "$(dirname "$0")/.."

sha=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
# The full-grid benchmarks want exactly one cold pass (-benchtime 1x);
# the kernel microbenchmarks need the default benchtime to reach steady
# state, so they run separately.
out=$(go test -run '^$' \
	-bench 'BenchmarkEstimateThroughput|BenchmarkColdSweep|BenchmarkCalibrationCold' \
	-benchtime 1x .)
out+=$'\n'
out+=$(go test -run '^$' -bench 'BenchmarkKernelEvents' .)
out+=$'\n'
# Warm piecewise vs affine serving: BENCH.md tracks that the segmented
# fits stay within 10% of affine throughput.
out+=$(go test -run '^$' -bench 'BenchmarkPiecewiseServing' .)
out+=$'\n'
out+=$(go test -run '^$' -bench 'BenchmarkServeThroughput' ./internal/serve)

record=$(
	BENCH_SHA="$sha" BENCH_OUT="$out" python3 - <<'EOF'
import json, os, datetime
print(json.dumps({
    "sha": os.environ["BENCH_SHA"],
    "date": datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds"),
    "bench": os.environ["BENCH_OUT"].splitlines(),
}, indent=2))
EOF
)

echo "$record"
if [ $# -ge 1 ]; then
	echo "$record" >"$1"
	echo "bench: wrote $1" >&2
fi
