#!/usr/bin/env bash
# bench.sh — run the tracked benchmarks once and emit a JSON record.
#
#   scripts/bench.sh            # print the record to stdout
#   scripts/bench.sh out.json   # also write it to out.json
#
# The record carries the commit, the raw `go test -bench` output, and
# the date; CI uploads it as BENCH_<sha>.json so per-commit numbers
# accumulate as artifacts. Append headline rows to BENCH.md by hand (or
# from the artifact) when a commit moves them.
set -euo pipefail
cd "$(dirname "$0")/.."

sha=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
# The full-grid benchmarks want exactly one cold pass (-benchtime 1x);
# the kernel microbenchmarks need the default benchtime to reach steady
# state, so they run separately.
out=$(go test -run '^$' \
	-bench 'BenchmarkEstimateThroughput|BenchmarkColdSweep|BenchmarkCalibrationCold' \
	-benchtime 1x .)
out+=$'\n'
out+=$(go test -run '^$' -bench 'BenchmarkKernelEvents' .)
out+=$'\n'
# Warm piecewise vs affine serving: BENCH.md tracks that the segmented
# fits stay within 10% of affine throughput.
out+=$(go test -run '^$' -bench 'BenchmarkPiecewiseServing' .)
out+=$'\n'
# HTTP serving throughput: plain, instrumented (-obs), and instrumented
# with sampled tracing (-trace). Three full invocations: within each, a
# variant and its twins run seconds apart, so their ratios cancel the
# minute-scale load drift of a shared box that single-shot or -count
# grouping would bake in.
serve_out=""
for _ in 1 2 3; do
	serve_out+=$(go test -run '^$' -bench 'BenchmarkServeThroughput' ./internal/serve)
	serve_out+=$'\n'
done
out+=$serve_out

# Fast wire mode through a real socket: the binary codec single and
# batched, cold and hot answer cache, plus the same-run JSON batch as
# the comparator.
wire_out=$(go test -run '^$' -bench 'BenchmarkServeWire' ./internal/serve)
out+=$wire_out
out+=$'\n'

# Gate: the binary batched hot-cache path must either clear 1M
# scenarios/s through the socket or beat the same-run JSON batch 5×.
# The headline this gates on is printed either way.
BENCH_WIRE="$wire_out" python3 - <<'EOF'
import os, re, sys

rates = {}
for line in os.environ["BENCH_WIRE"].splitlines():
    m = re.match(r"BenchmarkServeWire/(\S+?)(?:-\d+)?\s", line)
    if not m:
        continue
    rate = re.search(r"([\d.]+) scenarios/s", line)
    if not rate:
        sys.exit(f"bench: no scenarios/s in line: {line}")
    rates[m.group(1)] = float(rate.group(1))

try:
    hot = rates["binary-batch788-hot"]
    json_cold = rates["json-batch788-cold"]
except KeyError as missing:
    sys.exit(f"bench: missing serve-wire variant {missing}")
ratio = hot / json_cold
verdict = "ok" if hot >= 1e6 or ratio >= 5.0 else "FAIL"
print(f"bench: wire headline: binary batch788 hot {hot:,.0f} scenarios/s "
      f"({ratio:.1f}x same-run JSON batch788) {verdict}", file=sys.stderr)
if verdict == "FAIL":
    sys.exit("bench: fast wire mode fell below 1M scenarios/s and below 5x the JSON path")
EOF

# Gate: metrics-enabled (-obs) and sampled-tracing (-trace) serving
# must each stay within 5% of the plain warm path. Verdict is the BEST
# paired variant/plain throughput ratio: real instrumentation overhead
# depresses every pair, while host-load noise (±5-10% on a shared box)
# depresses pairs independently, so a genuine >5% regression fails all
# three pairs and a noisy dip fails only one.
BENCH_SERVE="$serve_out" python3 - <<'EOF'
import os, re, sys

rates = {}
for line in os.environ["BENCH_SERVE"].splitlines():
    # The -GOMAXPROCS name suffix is absent when GOMAXPROCS=1.
    m = re.match(r"BenchmarkServeThroughput/(\S+?)(?:-\d+)?\s", line)
    if not m:
        continue
    rate = re.search(r"([\d.]+) scenarios/s", line)
    if not rate:
        sys.exit(f"bench: no scenarios/s in line: {line}")
    rates.setdefault(m.group(1), []).append(float(rate.group(1)))

failed = False
for plain in ("single", "batch788"):
    for suffix in ("-obs", "-trace"):
        variant = plain + suffix
        if len(rates.get(plain, [])) != len(rates.get(variant, [])) or not rates.get(plain):
            counts = {k: len(v) for k, v in rates.items()}
            sys.exit(f"bench: unpaired serve variants {counts}")
        ratios = [v / p for v, p in zip(rates[variant], rates[plain])]
        best = max(ratios)
        verdict = "ok" if best >= 0.95 else "FAIL"
        shown = ", ".join(f"{r:.1%}" for r in ratios)
        print(f"bench: {suffix[1:]} overhead {plain}: paired ratios [{shown}], "
              f"best {best:.1%} {verdict}", file=sys.stderr)
        failed |= best < 0.95
if failed:
    sys.exit("bench: instrumented serving fell below 95% of the plain path in every paired run")
EOF

# Sampled-trace digest: run a live worker at 1-in-1 sampling, drive it
# with predict's grid load, and keep the slowest sampled requests from
# GET /debug/traces in the record — per-commit tail-latency anatomy
# (which stage ate the time) next to the throughput numbers.
tracebin=$(mktemp -d)
trap 'rm -rf "$tracebin"' EXIT
go build -o "$tracebin" ./cmd/serve ./cmd/predict ./cmd/fleetfront

# Front overhead: the batch788 grid through the sharding front over two
# workers vs one of those workers answering directly. Tracked, not
# gated — the target is ≤15% overhead (one extra hop, split/merge, and
# the per-worker gates). Both paths are warmed once so answer-cache
# fills don't land on either side of the comparison.
fw0_port=18696 fw1_port=18697 front_port=18698
"$tracebin/serve" -addr "127.0.0.1:$fw0_port" -registry paper-table3 -quiet &
fw0_pid=$!
"$tracebin/serve" -addr "127.0.0.1:$fw1_port" -registry paper-table3 -quiet &
fw1_pid=$!
"$tracebin/fleetfront" -addr "127.0.0.1:$front_port" -quiet -scrape-interval 0 \
	-workers "w0=127.0.0.1:$fw0_port,w1=127.0.0.1:$fw1_port" &
front_pid=$!
for url in "http://127.0.0.1:$fw0_port/v1/registry" \
	"http://127.0.0.1:$fw1_port/v1/registry" \
	"http://127.0.0.1:$front_port/v1/registry"; do
	for _ in $(seq 50); do
		curl -sf -o /dev/null "$url" 2>/dev/null && break
		sleep 0.1
	done
done
front_reps=10
front_times=$(
	for target in "direct=http://127.0.0.1:$fw0_port" "front=http://127.0.0.1:$front_port"; do
		name=${target%%=*} url=${target#*=}
		"$tracebin/predict" -remote "$url" -registry paper-table3 -grid >/dev/null # warm
		start=$(python3 -c 'import time; print(time.monotonic())')
		"$tracebin/predict" -remote "$url" -registry paper-table3 -grid -repeat "$front_reps" >/dev/null
		end=$(python3 -c 'import time; print(time.monotonic())')
		echo "$name $start $end"
	done
)
front_row=$(FRONT_TIMES="$front_times" FRONT_REPS="$front_reps" python3 - <<'EOF'
import os

reps, grid = int(os.environ["FRONT_REPS"]), 788
rates = {}
for line in os.environ["FRONT_TIMES"].splitlines():
    name, start, end = line.split()
    rates[name] = reps * grid / (float(end) - float(start))
ratio = rates["front"] / rates["direct"]
verdict = "ok" if ratio >= 0.85 else "over-target"
print(f"BenchmarkFleetFront/json-batch788 direct {rates['direct']:,.0f} scenarios/s, "
      f"fronted {rates['front']:,.0f} scenarios/s ({ratio:.1%} of direct, "
      f"target >=85%) {verdict} [non-gating]")
EOF
)
echo "bench: $front_row" >&2
out+=$front_row
out+=$'\n'
kill "$front_pid" "$fw0_pid" "$fw1_pid" 2>/dev/null || true
wait "$front_pid" "$fw0_pid" "$fw1_pid" 2>/dev/null || true
trace_port=18695
"$tracebin/serve" -addr "127.0.0.1:$trace_port" -registry paper-table3 \
	-quiet -trace-sample 1 -answer-cache-size 0 &
trace_pid=$!
for _ in $(seq 50); do
	curl -sf -o /dev/null "http://127.0.0.1:$trace_port/v1/registry" 2>/dev/null && break
	sleep 0.1
done
"$tracebin/predict" -remote "http://127.0.0.1:$trace_port" -registry paper-table3 \
	-grid -repeat 20 -trace-id "bench-$sha" >/dev/null
trace_out=$(curl -sf "http://127.0.0.1:$trace_port/debug/traces")
kill "$trace_pid" 2>/dev/null || true
wait "$trace_pid" 2>/dev/null || true

record=$(
	BENCH_SHA="$sha" BENCH_OUT="$out" BENCH_TRACES="$trace_out" python3 - <<'EOF'
import json, os, sys, datetime

traces = []
for line in os.environ.get("BENCH_TRACES", "").splitlines():
    line = line.strip()
    if line:
        traces.append(json.loads(line))
traces.sort(key=lambda t: t.get("duration_ns", 0), reverse=True)
slowest = [{k: t.get(k) for k in ("trace_id", "duration_ns", "outcome", "scenarios", "stage_ns")}
           for t in traces[:5]]
if slowest:
    top = slowest[0]
    print(f"bench: trace digest: {len(traces)} sampled, slowest "
          f"{top['duration_ns']:,} ns ({top['trace_id']})", file=sys.stderr)

print(json.dumps({
    "sha": os.environ["BENCH_SHA"],
    "date": datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds"),
    "bench": os.environ["BENCH_OUT"].splitlines(),
    "trace_digest": {"sampled": len(traces), "slowest": slowest},
}, indent=2))
EOF
)

echo "$record"
if [ $# -ge 1 ]; then
	echo "$record" >"$1"
	echo "bench: wrote $1" >&2
fi
