// Command collbench measures one MPI collective on one simulated
// machine, following the paper's benchmark procedure, and prints the
// measured time next to the paper's Table 3 prediction. The measurement
// runs through the sweep engine, so -alg selects a registry algorithm
// variant and -cache reuses content-keyed results across invocations.
//
// Usage:
//
//	collbench -machine T3D -op alltoall -p 64 -m 512
//	collbench -machine T3D -op alltoall -p 64 -alg bruck
//	collbench -machine SP2 -op barrier -p 32 -paper
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/sweep"
	"repro/internal/trace"
)

func main() {
	var (
		machName = flag.String("machine", "T3D", "SP2, T3D, or Paragon")
		opName   = flag.String("op", "alltoall", "barrier, broadcast, gather, scatter, reduce, scan, alltoall, allgather, allreduce")
		algName  = flag.String("alg", sweep.DefaultAlgorithm, "collective algorithm variant (\"default\" = the vendor table)")
		p        = flag.Int("p", 64, "machine size (nodes)")
		m        = flag.Int("m", 1024, "message length per node pair (bytes)")
		k        = flag.Int("k", 20, "timed iterations per execution")
		reps     = flag.Int("reps", 5, "independent executions")
		seed     = flag.Int64("seed", 1, "simulation seed")
		paperCfg = flag.Bool("paper", false, "use the paper's full procedure (equivalent to -k 20 -reps 5)")
		cacheDir = flag.String("cache", "", "directory for content-keyed result cache")
		traceRun = flag.Bool("trace", false, "run one extra instance with network tracing and print the transfer report")
	)
	flag.Parse()

	mach := machine.ByName(*machName)
	if mach == nil {
		fmt.Fprintf(os.Stderr, "collbench: unknown machine %q\n", *machName)
		os.Exit(2)
	}
	op := machine.Op(*opName)
	cfg := measure.Config{Warmup: 2, K: *k, Reps: *reps, Seed: *seed}
	if *paperCfg {
		cfg = measure.Paper()
	}
	msg := *m
	if op == machine.OpBarrier {
		msg = 0
	}

	spec := sweep.Spec{
		Machines:   []string{mach.Name()},
		Ops:        []machine.Op{op},
		Algorithms: map[machine.Op][]string{op: {*algName}},
		Sizes:      []int{*p},
		Lengths:    []int{msg},
		Config:     cfg,
	}
	scns, err := spec.Expand()
	if err != nil {
		fmt.Fprintln(os.Stderr, "collbench:", err)
		os.Exit(2)
	}
	if len(scns) == 0 {
		fmt.Fprintf(os.Stderr, "collbench: p=%d exceeds the %s allocation (max %d)\n",
			*p, mach.Name(), mach.MaxNodes())
		os.Exit(2)
	}
	cache, err := sweep.OpenCache(*cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "collbench:", err)
		os.Exit(1)
	}
	results := (&sweep.Runner{Cache: cache}).Run(scns)
	s := results[0].Sample
	fmt.Printf("%s %s[%s]  p=%d  m=%d bytes  (k=%d, %d reps)\n",
		s.Machine, s.Op, results[0].Scenario.Algorithm, s.P, s.M, cfg.K, cfg.Reps)
	fmt.Printf("  measured: %.1f µs  (min %.1f, max %.1f across executions)\n",
		s.Micros, s.MinMicros, s.MaxMicros)

	pr := model.FromPaper()
	if _, ok := pr.Expression(mach.Name(), op); ok {
		want := pr.Time(mach.Name(), op, msg, *p)
		fmt.Printf("  paper fit: %.1f µs  (ratio %.2f)\n", want, s.Micros/want)
	} else {
		fmt.Printf("  paper fit: n/a (%s is not in Table 3)\n", op)
	}

	if *traceRun {
		fmt.Println("\ntrace of one instance:")
		cl := machine.NewCluster(mach, *p, *seed)
		rec := trace.Attach(cl.Net())
		algs := mpi.DefaultAlgorithms(mach)
		if alg := results[0].Scenario.Algorithm; alg != sweep.DefaultAlgorithm {
			algs = algs.With(op, alg)
		}
		if err := mpi.RunWithAlgorithms(cl, algs, func(c *mpi.Comm) { traceBody(c, op, msg) }); err != nil {
			fmt.Fprintln(os.Stderr, "collbench: trace run:", err)
			os.Exit(1)
		}
		rec.WriteReport(os.Stdout, 8)
	}
}

// traceBody executes one collective instance for the -trace run.
func traceBody(c *mpi.Comm, op machine.Op, msg int) {
	blocks := func() [][]byte {
		bs := make([][]byte, c.Size())
		for i := range bs {
			bs[i] = make([]byte, msg)
		}
		return bs
	}
	switch op {
	case machine.OpBarrier:
		c.Barrier()
	case machine.OpBroadcast:
		var in []byte
		if c.Rank() == 0 {
			in = make([]byte, msg)
		}
		c.Bcast(0, in)
	case machine.OpGather:
		c.Gather(0, make([]byte, msg))
	case machine.OpScatter:
		var in [][]byte
		if c.Rank() == 0 {
			in = blocks()
		}
		c.Scatter(0, in)
	case machine.OpAlltoall:
		c.Alltoall(blocks())
	case machine.OpReduce:
		c.Reduce(0, make([]byte, msg), mpi.Sum, mpi.Float)
	case machine.OpScan:
		c.Scan(make([]byte, msg), mpi.Sum, mpi.Float)
	case machine.OpAllgather:
		c.Allgather(make([]byte, msg))
	case machine.OpAllreduce:
		c.Allreduce(make([]byte, msg), mpi.Sum, mpi.Float)
	}
}
