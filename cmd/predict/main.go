// Command predict evaluates closed-form timing expressions analytically
// — the use the paper proposes for them: estimating communication
// overhead, ranking machines, and locating crossovers without running
// anything. The expression set is pluggable through the estimation
// backends: the paper's published Table 3 (default) or expressions
// recalibrated from the simulator, optionally persisted in a sweep
// cache directory so recalibration happens once.
//
// Usage:
//
//	predict -op alltoall -p 64 -m 512
//	predict -op broadcast -p 32 -m 65536 -crossover SP2,Paragon
//	predict -backend calibrated -cache .sweepcache -op alltoall -p 64 -m 512
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/sweep"
)

func main() {
	var (
		opName    = flag.String("op", "alltoall", "collective operation (Table 3 row)")
		p         = flag.Int("p", 64, "machine size (nodes)")
		m         = flag.Int("m", 1024, "message length per node pair (bytes)")
		crossover = flag.String("crossover", "", "pair \"A,B\": message size where B overtakes A")
		backendF  = flag.String("backend", "paper", `expression source: "paper" (Table 3) or "calibrated" (refit from the simulator)`)
		cacheDir  = flag.String("cache", "", "sweep cache directory persisting calibrated expressions")
	)
	flag.Parse()

	op := machine.Op(*opName)
	if _, ok := model.FromPaper().Expression("T3D", op); !ok {
		fmt.Fprintf(os.Stderr, "predict: %q is not a Table 3 operation\n", *opName)
		os.Exit(2)
	}
	pr, label, err := predictor(*backendF, op, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(2)
	}

	msg := *m
	if op == machine.OpBarrier {
		msg = 0
	}
	fmt.Printf("%s  p=%d  m=%d bytes (%s)\n", op, *p, msg, label)
	for _, mach := range pr.Rank(op, msg, *p) {
		e, _ := pr.Expression(mach, op)
		fmt.Printf("  %-8s T=%12.1f µs   T0=%10.1f µs   R∞=%8.0f MB/s   %s\n",
			mach, pr.Time(mach, op, msg, *p), pr.Startup(mach, op, *p),
			pr.Bandwidth(mach, op, *p), e)
	}

	if *crossover != "" {
		parts := strings.SplitN(*crossover, ",", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "predict: -crossover wants \"A,B\"")
			os.Exit(2)
		}
		a, b := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
		if at, ok := pr.Crossover(a, b, op, *p, 4, 1<<20); ok {
			fmt.Printf("crossover: %s overtakes %s at m ≈ %d bytes (p=%d)\n", b, a, at, *p)
		} else {
			fmt.Printf("crossover: %s never overtakes %s for m ≤ 1 MB (p=%d)\n", b, a, *p)
		}
	}
}

// predictor resolves the expression set behind the requested backend.
func predictor(backend string, op machine.Op, cacheDir string) (*model.Predictor, string, error) {
	switch backend {
	case "paper", "":
		return model.FromPaper(), "paper Table 3 expressions", nil
	case "calibrated":
		cache, err := sweep.OpenCache(cacheDir)
		if err != nil {
			return nil, "", err
		}
		cal := &estimate.Calibrated{}
		if cache != nil {
			cal.Store = cache
		}
		fmt.Fprintln(os.Stderr, "predict: calibrating from the simulator (cached fits are reused) ...")
		pr := cal.Predictor(machine.All(), []machine.Op{op})
		return pr, "expressions recalibrated from the simulator", nil
	default:
		return nil, "", fmt.Errorf("unknown backend %q (want paper or calibrated)", backend)
	}
}
