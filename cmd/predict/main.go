// Command predict evaluates closed-form timing expressions analytically
// — the use the paper proposes for them: estimating communication
// overhead, ranking machines, and locating crossovers without running
// anything. The expression set comes from the same named registry the
// HTTP service (cmd/serve) resolves against: the paper's published
// Table 3, or expressions recalibrated from the simulator, optionally
// persisted in a sweep cache directory so recalibration happens once.
//
// Usage:
//
//	predict -op alltoall -p 64 -m 512
//	predict -op broadcast -p 32 -m 65536 -crossover SP2,Paragon
//	predict -registry refit-default -cache .sweepcache -op alltoall -p 64 -m 512
//	predict -registry refit-piecewise -op scatter -p 32 -m 1024
//	predict -list-registries
//
// With -remote, predict asks a running cmd/serve instance instead —
// over the binary fast wire codec by default — and doubles as the
// service's load generator:
//
//	predict -remote http://localhost:8080 -op alltoall -p 64 -m 512
//	predict -remote http://localhost:8080 -grid -repeat 100   # 788-scenario batches
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/sweep"
)

func main() {
	var (
		opName    = flag.String("op", "alltoall", "collective operation")
		p         = flag.Int("p", 64, "machine size (nodes)")
		m         = flag.Int("m", 1024, "message length per node pair (bytes)")
		crossover = flag.String("crossover", "", "pair \"A,B\": message size where B overtakes A")
		registryF = flag.String("registry", "", "expression set from the registry (see -list-registries); overrides -backend")
		backendF  = flag.String("backend", "paper", `legacy expression source: "paper" (= paper-table3), "calibrated" (= refit-default), or "piecewise" (= refit-piecewise)`)
		cacheDir  = flag.String("cache", "", "sweep cache directory persisting calibrated expressions")
		listReg   = flag.Bool("list-registries", false, "list the named expression sets and exit")
		remote    = flag.String("remote", "", "ask a running serve instance at this base URL instead of evaluating locally")
		codec     = flag.String("codec", "binary", `remote request codec: "binary" (fast wire mode) or "json"`)
		repeat    = flag.Int("repeat", 1, "remote only: send the batch this many times (load generation)")
		grid      = flag.Bool("grid", false, "remote only: send the full default sweep grid instead of one scenario per machine")
		timeout   = flag.Duration("timeout", 0, "remote only: per-request timeout (0 = none)")
		retries   = flag.Int("retries", 3, "remote only: retry budget per request for transient failures (connect errors, 5xx, 429)")
		traceID   = flag.String("trace-id", "", "remote only: X-Trace-Id sent on every request (\"\" generates one per run), correlating client retries with server-side logs and /debug/traces")
	)
	flag.Parse()

	if *remote != "" {
		os.Exit(runRemote(remoteOpts{
			URL: *remote, Registry: *registryF, Codec: *codec, Op: *opName,
			P: *p, M: *m, Repeat: *repeat, Grid: *grid,
			Timeout: *timeout, Retries: *retries, TraceID: *traceID,
		}))
	}

	reg, err := registry(*cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(2)
	}
	if *listReg {
		fmt.Println("expression-set registries:")
		for _, e := range reg.Entries() {
			fmt.Printf("  %-16s %s\n", e.Name, e.Description)
		}
		return
	}

	op, err := estimate.ResolveOp(*opName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(2)
	}
	pr, entry, err := predictor(reg, *registryF, *backendF, op)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(2)
	}

	msg := *m
	if op == machine.OpBarrier {
		msg = 0
	}
	// Rank evaluates every machine, so the expression set must cover
	// them all; the paper's table has no allgather/allreduce rows, for
	// example, while the refit registries cover every operation.
	for _, mach := range pr.Machines() {
		if _, ok := pr.Expression(mach, op); !ok {
			fmt.Fprintf(os.Stderr, "predict: the %s expression set has no %s/%s entry (try -registry refit-default)\n",
				entry.Name, mach, op)
			os.Exit(2)
		}
	}
	fmt.Printf("%s  p=%d  m=%d bytes (%s: %s)\n", op, *p, msg, entry.Name, entry.Description)
	for _, mach := range pr.Rank(op, msg, *p) {
		e, _ := pr.Expression(mach, op)
		fmt.Printf("  %-8s T=%12.1f µs   T0=%10.1f µs   R∞=%8.0f MB/s   %s\n",
			mach, pr.Time(mach, op, msg, *p), pr.Startup(mach, op, *p),
			pr.Bandwidth(mach, op, *p), e)
	}

	if *crossover != "" {
		parts := strings.SplitN(*crossover, ",", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "predict: -crossover wants \"A,B\"")
			os.Exit(2)
		}
		a, b := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
		if at, ok := pr.Crossover(a, b, op, *p, 4, 1<<20); ok {
			fmt.Printf("crossover: %s overtakes %s at m ≈ %d bytes (p=%d)\n", b, a, at, *p)
		} else {
			fmt.Printf("crossover: %s never overtakes %s for m ≤ 1 MB (p=%d)\n", b, a, *p)
		}
	}
}

// registry assembles the standard expression-set registry, backed by
// the cache directory when one is given — the same resolution path the
// HTTP service uses.
func registry(cacheDir string) (*estimate.Registry, error) {
	cache, err := sweep.OpenCache(cacheDir)
	if err != nil {
		return nil, err
	}
	cfg := estimate.RegistryConfig{}
	if cache != nil {
		cfg.Store = cache
	}
	return estimate.StandardRegistry(cfg), nil
}

// predictor resolves the requested registry entry (honoring the legacy
// -backend spelling) and exports its expressions as a predictor.
func predictor(reg *estimate.Registry, registryName, backend string, op machine.Op) (*model.Predictor, *estimate.Entry, error) {
	name := registryName
	if name == "" {
		switch backend {
		case "paper", "":
			name = "paper-table3"
		case "calibrated":
			name = "refit-default"
		case "piecewise":
			name = "refit-piecewise"
		default:
			return nil, nil, fmt.Errorf("unknown backend %q (want paper, calibrated, or piecewise; or use -registry)", backend)
		}
	}
	entry, err := reg.Get(name)
	if err != nil {
		return nil, nil, err
	}
	if _, isCal := entry.Backend.(*estimate.Calibrated); isCal {
		fmt.Fprintln(os.Stderr, "predict: calibrating from the simulator (cached fits are reused) ...")
	}
	pr, ok := entry.Predictor(machine.All(), []machine.Op{op})
	if !ok {
		return nil, nil, fmt.Errorf("registry %q has no closed-form expressions to evaluate", name)
	}
	return pr, entry, nil
}
