// Command predict evaluates the paper's closed-form timing expressions
// analytically — the use the paper proposes for them: estimating
// communication overhead, ranking machines, and locating crossovers
// without running anything.
//
// Usage:
//
//	predict -op alltoall -p 64 -m 512
//	predict -op broadcast -p 32 -m 65536 -crossover SP2,Paragon
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/machine"
	"repro/internal/model"
)

func main() {
	var (
		opName    = flag.String("op", "alltoall", "collective operation (Table 3 row)")
		p         = flag.Int("p", 64, "machine size (nodes)")
		m         = flag.Int("m", 1024, "message length per node pair (bytes)")
		crossover = flag.String("crossover", "", "pair \"A,B\": message size where B overtakes A")
	)
	flag.Parse()

	pr := model.FromPaper()
	op := machine.Op(*opName)
	if _, ok := pr.Expression("T3D", op); !ok {
		fmt.Fprintf(os.Stderr, "predict: %q is not a Table 3 operation\n", *opName)
		os.Exit(2)
	}

	msg := *m
	if op == machine.OpBarrier {
		msg = 0
	}
	fmt.Printf("%s  p=%d  m=%d bytes (paper Table 3 expressions)\n", op, *p, msg)
	for _, mach := range pr.Rank(op, msg, *p) {
		e, _ := pr.Expression(mach, op)
		fmt.Printf("  %-8s T=%12.1f µs   T0=%10.1f µs   R∞=%8.0f MB/s   %s\n",
			mach, pr.Time(mach, op, msg, *p), pr.Startup(mach, op, *p),
			pr.Bandwidth(mach, op, *p), e)
	}

	if *crossover != "" {
		parts := strings.SplitN(*crossover, ",", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "predict: -crossover wants \"A,B\"")
			os.Exit(2)
		}
		a, b := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
		if at, ok := pr.Crossover(a, b, op, *p, 4, 1<<20); ok {
			fmt.Printf("crossover: %s overtakes %s at m ≈ %d bytes (p=%d)\n", b, a, at, *p)
		} else {
			fmt.Printf("crossover: %s never overtakes %s for m ≤ 1 MB (p=%d)\n", b, a, *p)
		}
	}
}
