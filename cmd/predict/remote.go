package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/serve"
	"repro/internal/serve/wire"
	"repro/internal/sweep"
)

// runRemote asks a running cmd/serve instance instead of evaluating
// locally — by default over the binary fast wire codec, making predict
// double as the service's load generator: -repeat N replays the batch
// over a kept-alive connection and reports scenarios/s.
func runRemote(url, registryName, codec, opName string, p, m, repeat int, grid bool) int {
	var scns []serve.Scenario
	if grid {
		spec := sweep.Spec{
			Algorithms: sweep.AllAlgorithms(machine.Ops),
			Sizes:      estimate.DefaultCalibrationSizes,
		}
		expanded, err := spec.Expand()
		if err != nil {
			fmt.Fprintln(os.Stderr, "predict:", err)
			return 2
		}
		for _, sc := range expanded {
			scns = append(scns, serve.Scenario{
				Machine: sc.Machine, Op: string(sc.Op), Algorithm: sc.Algorithm, P: sc.P, M: sc.M,
			})
		}
	} else {
		op, err := estimate.ResolveOp(opName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "predict:", err)
			return 2
		}
		for _, mach := range machine.All() {
			scns = append(scns, serve.Scenario{Machine: mach.Name(), Op: string(op), P: p, M: m})
		}
	}

	var body []byte
	var contentType string
	switch codec {
	case "binary":
		body = encodeWire(registryName, scns)
		contentType = wire.ContentType
	case "json":
		req := struct {
			Registry  string           `json:"registry,omitempty"`
			Scenarios []serve.Scenario `json:"scenarios"`
		}{registryName, scns}
		blob, err := json.Marshal(req)
		if err != nil {
			fmt.Fprintln(os.Stderr, "predict:", err)
			return 1
		}
		body, contentType = blob, "application/json"
	default:
		fmt.Fprintf(os.Stderr, "predict: unknown -codec %q (want binary or json)\n", codec)
		return 2
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
	endpoint := url + "/v1/estimate"
	if repeat < 1 {
		repeat = 1
	}
	var last []byte
	var cacheHeader string
	start := time.Now()
	for i := 0; i < repeat; i++ {
		resp, err := client.Post(endpoint, contentType, bytes.NewReader(body))
		if err != nil {
			fmt.Fprintln(os.Stderr, "predict:", err)
			return 1
		}
		blob, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "predict:", err)
			return 1
		}
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "predict: %s: %s\n", resp.Status, bytes.TrimSpace(blob))
			return 1
		}
		last, cacheHeader = blob, resp.Header.Get("X-Estimate-Cache")
	}
	elapsed := time.Since(start)

	answers, envelope, err := decodeAnswers(codec, last)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		return 1
	}
	fmt.Printf("remote %s (%s): %s, cache %s\n", url, codec, envelope, cacheHeader)
	if grid {
		fmt.Printf("  %d scenarios per request\n", len(answers))
	} else {
		for i, a := range answers {
			note := ""
			if a.Fallback {
				note = "  (sim fallback)"
			}
			fmt.Printf("  %-8s T=%12.1f µs%s\n", scns[i].Machine, a.Micros, note)
		}
	}
	rate := float64(len(scns)*repeat) / elapsed.Seconds()
	fmt.Printf("  %d requests × %d scenarios in %s  →  %.0f scenarios/s\n",
		repeat, len(scns), elapsed.Round(time.Millisecond), rate)
	return 0
}

// encodeWire builds the binary request frame, interning each distinct
// name once in the string table.
func encodeWire(registry string, scns []serve.Scenario) []byte {
	req := wire.Request{Registry: registry}
	index := map[string]uint32{}
	intern := func(s string) uint32 {
		if i, ok := index[s]; ok {
			return i
		}
		i := uint32(len(req.Table))
		req.Table = append(req.Table, s)
		index[s] = i
		return i
	}
	for _, sc := range scns {
		req.Records = append(req.Records, wire.Record{
			Mach: intern(sc.Machine), Op: intern(sc.Op), Alg: intern(sc.Algorithm),
			P: sc.P, M: sc.M,
		})
	}
	return req.Append(nil)
}

// decodeAnswers normalizes both codecs' responses to (micros, fallback)
// pairs plus a one-line envelope description.
func decodeAnswers(codec string, blob []byte) ([]wire.Answer, string, error) {
	if codec == "binary" {
		var resp wire.Response
		if err := resp.Decode(blob); err != nil {
			return nil, "", err
		}
		return resp.Answers, fmt.Sprintf("registry %s, backend %s", resp.Registry, resp.Backend), nil
	}
	var resp serve.Response
	if err := json.Unmarshal(blob, &resp); err != nil {
		return nil, "", err
	}
	answers := make([]wire.Answer, len(resp.Answers))
	for i, a := range resp.Answers {
		answers[i] = wire.Answer{Micros: a.Micros, Fallback: a.Fallback, FallbackReason: a.FallbackReason}
	}
	return answers, fmt.Sprintf("registry %s, backend %s", resp.Registry, resp.Backend), nil
}
