package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"time"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/serve"
	"repro/internal/serve/wire"
	"repro/internal/sweep"
)

// remoteOpts parameterizes one remote run — the scenario selection plus
// the client's resilience knobs (timeout, retry budget).
type remoteOpts struct {
	URL, Registry, Codec, Op string
	P, M, Repeat             int
	Grid                     bool
	Timeout                  time.Duration
	Retries                  int
	// TraceID rides on every request as X-Trace-Id — one fixed ID per
	// run ("" generates one), so a request and all its retries carry the
	// same identity and can be pulled from the server's /debug/traces.
	TraceID string
}

// runRemote asks a running cmd/serve instance instead of evaluating
// locally — by default over the binary fast wire codec, making predict
// double as the service's load generator: -repeat N replays the batch
// over a kept-alive connection and reports scenarios/s. Transient
// failures (connect errors, 5xx, 429 with Retry-After) retry with
// jittered exponential backoff up to the -retries budget, and the
// summary reports how many retries the run spent.
func runRemote(o remoteOpts) int {
	url, registryName, codec, opName := o.URL, o.Registry, o.Codec, o.Op
	p, m, repeat, grid := o.P, o.M, o.Repeat, o.Grid
	var scns []serve.Scenario
	if grid {
		spec := sweep.Spec{
			Algorithms: sweep.AllAlgorithms(machine.Ops),
			Sizes:      estimate.DefaultCalibrationSizes,
		}
		expanded, err := spec.Expand()
		if err != nil {
			fmt.Fprintln(os.Stderr, "predict:", err)
			return 2
		}
		for _, sc := range expanded {
			scns = append(scns, serve.Scenario{
				Machine: sc.Machine, Op: string(sc.Op), Algorithm: sc.Algorithm, P: sc.P, M: sc.M,
			})
		}
	} else {
		op, err := estimate.ResolveOp(opName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "predict:", err)
			return 2
		}
		for _, mach := range machine.All() {
			scns = append(scns, serve.Scenario{Machine: mach.Name(), Op: string(op), P: p, M: m})
		}
	}

	var body []byte
	var contentType string
	switch codec {
	case "binary":
		body = encodeWire(registryName, scns)
		contentType = wire.ContentType
	case "json":
		req := struct {
			Registry  string           `json:"registry,omitempty"`
			Scenarios []serve.Scenario `json:"scenarios"`
		}{registryName, scns}
		blob, err := json.Marshal(req)
		if err != nil {
			fmt.Fprintln(os.Stderr, "predict:", err)
			return 1
		}
		body, contentType = blob, "application/json"
	default:
		fmt.Fprintf(os.Stderr, "predict: unknown -codec %q (want binary or json)\n", codec)
		return 2
	}

	client := &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: 4},
		Timeout:   o.Timeout,
	}
	endpoint := url + "/v1/estimate"
	if repeat < 1 {
		repeat = 1
	}
	// One trace ID for the whole run: every request — and every retry of
	// it — carries the same X-Trace-Id, so a failed load run can be
	// pulled out of the server's access logs and /debug/traces by one
	// grep.
	traceID := o.TraceID
	if traceID == "" {
		traceID = fmt.Sprintf("predict-%x", time.Now().UnixNano())
	}
	var last []byte
	var cacheHeader string
	totalRetries := 0
	start := time.Now()
	for i := 0; i < repeat; i++ {
		blob, cache, retried, err := postWithRetry(client, endpoint, contentType, body, o.Retries, traceID)
		totalRetries += retried
		if err != nil {
			fmt.Fprintf(os.Stderr, "predict: %v (after %d retries)\n", err, retried)
			return 1
		}
		last, cacheHeader = blob, cache
	}
	elapsed := time.Since(start)

	answers, envelope, err := decodeAnswers(codec, last)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		return 1
	}
	fmt.Printf("remote %s (%s): %s, cache %s, trace %s\n", url, codec, envelope, cacheHeader, traceID)
	if grid {
		fmt.Printf("  %d scenarios per request\n", len(answers))
	} else {
		for i, a := range answers {
			note := ""
			if a.Fallback {
				note = "  (sim fallback)"
			}
			fmt.Printf("  %-8s T=%12.1f µs%s\n", scns[i].Machine, a.Micros, note)
		}
	}
	rate := float64(len(scns)*repeat) / elapsed.Seconds()
	fmt.Printf("  %d requests × %d scenarios in %s (%d retries)  →  %.0f scenarios/s\n",
		repeat, len(scns), elapsed.Round(time.Millisecond), totalRetries, rate)
	return 0
}

// postWithRetry sends one request, retrying transient failures —
// connect/transport errors, 5xx, and 429 — with jittered exponential
// backoff starting at 100ms and doubling per attempt. A 429's
// Retry-After (seconds) is honored when it exceeds the computed
// backoff, so a shedding server paces its own retries. Returns the
// response body, the X-Estimate-Cache header, and the retries spent.
func postWithRetry(client *http.Client, endpoint, contentType string, body []byte, retries int, traceID string) ([]byte, string, int, error) {
	backoff := 100 * time.Millisecond
	for attempt := 0; ; attempt++ {
		blob, cache, retryAfter, err := postOnce(client, endpoint, contentType, body, traceID)
		if err == nil {
			return blob, cache, attempt, nil
		}
		if attempt >= retries || !isTransient(err) {
			return nil, "", attempt, err
		}
		delay := backoff + time.Duration(rand.Int63n(int64(backoff)))
		if retryAfter > delay {
			delay = retryAfter
		}
		time.Sleep(delay)
		backoff *= 2
	}
}

// httpStatusError is a non-200 response, kept as a typed error so the
// retry loop can distinguish retriable statuses (5xx, 429) from
// permanent ones (4xx).
type httpStatusError struct {
	code int
	msg  string
}

func (e *httpStatusError) Error() string { return e.msg }

func isTransient(err error) bool {
	if se, ok := err.(*httpStatusError); ok {
		return se.code == http.StatusTooManyRequests || se.code >= 500
	}
	return true // transport-level: connect refused, reset, timeout
}

func postOnce(client *http.Client, endpoint, contentType string, body []byte, traceID string) (blob []byte, cache string, retryAfter time.Duration, err error) {
	req, err := http.NewRequest(http.MethodPost, endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, "", 0, err
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set(serve.TraceIDHeader, traceID)
	resp, err := client.Do(req)
	if err != nil {
		return nil, "", 0, err
	}
	defer resp.Body.Close()
	blob, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", 0, err
	}
	if resp.StatusCode != http.StatusOK {
		if secs, e := strconv.Atoi(resp.Header.Get("Retry-After")); e == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
		return nil, "", retryAfter, &httpStatusError{
			code: resp.StatusCode,
			msg:  fmt.Sprintf("%s: %s", resp.Status, bytes.TrimSpace(blob)),
		}
	}
	return blob, resp.Header.Get("X-Estimate-Cache"), 0, nil
}

// encodeWire builds the binary request frame, interning each distinct
// name once in the string table.
func encodeWire(registry string, scns []serve.Scenario) []byte {
	req := wire.Request{Registry: registry}
	index := map[string]uint32{}
	intern := func(s string) uint32 {
		if i, ok := index[s]; ok {
			return i
		}
		i := uint32(len(req.Table))
		req.Table = append(req.Table, s)
		index[s] = i
		return i
	}
	for _, sc := range scns {
		req.Records = append(req.Records, wire.Record{
			Mach: intern(sc.Machine), Op: intern(sc.Op), Alg: intern(sc.Algorithm),
			P: sc.P, M: sc.M,
		})
	}
	return req.Append(nil)
}

// decodeAnswers normalizes both codecs' responses to (micros, fallback)
// pairs plus a one-line envelope description.
func decodeAnswers(codec string, blob []byte) ([]wire.Answer, string, error) {
	if codec == "binary" {
		var resp wire.Response
		if err := resp.Decode(blob); err != nil {
			return nil, "", err
		}
		return resp.Answers, fmt.Sprintf("registry %s, backend %s", resp.Registry, resp.Backend), nil
	}
	var resp serve.Response
	if err := json.Unmarshal(blob, &resp); err != nil {
		return nil, "", err
	}
	answers := make([]wire.Answer, len(resp.Answers))
	for i, a := range resp.Answers {
		answers[i] = wire.Answer{Micros: a.Micros, Fallback: a.Fallback, FallbackReason: a.FallbackReason}
	}
	return answers, fmt.Sprintf("registry %s, backend %s", resp.Registry, resp.Backend), nil
}
