// Command fleetstat aggregates the /metrics endpoints of a fleet of
// serve processes into one merged view. It scrapes every target on an
// interval (bounded concurrency, per-target timeout), merges the
// snapshots exactly — counters and gauges sum, histograms add
// bucket-wise over the shared log₂ bounds — and re-exposes the result:
//
//	serve -addr :8080 &
//	serve -addr :8081 &
//	fleetstat -targets w0=localhost:8080,w1=localhost:8081 -addr :9090
//
//	curl -s localhost:9090/metrics       # fleet totals + per-instance series
//	curl -s localhost:9090/fleet/status  # scrape health as JSON
//
// Every worker series appears twice: once under its original labels
// holding the fleet-wide total, and once per worker with an
// instance="<name>" label. The scraper's own health series
// (fleet_instance_up, fleet_instance_stale, fleet_scrapes_total,
// fleet_scrape_errors_total) mark dead or silent workers; a stale
// worker's last good snapshot keeps contributing to the totals, so
// counters never move backwards when an instance dies.
//
// One-shot mode skips the listener: -once scrapes every target a
// single time and writes the merged view to stdout, as Prometheus text
// or, with -json, as a {"status": …, "metrics": …} JSON document.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/fleet"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		targets = flag.String("targets", "",
			`comma-separated scrape targets, each "name=url" or a bare url; a url without a scheme gets http:// and a bare host:port gets /metrics appended (e.g. "w0=localhost:8080,w1=localhost:8081")`)
		addr        = flag.String("addr", ":9090", "listen address for the merged view")
		interval    = flag.Duration("interval", 5*time.Second, "scrape period")
		timeout     = flag.Duration("timeout", 2*time.Second, "per-target scrape timeout")
		staleAfter  = flag.Duration("stale-after", 0, "age after which an instance is marked stale (0 = 3×interval)")
		concurrency = flag.Int("concurrency", 8, "scrapes in flight at once")
		once        = flag.Bool("once", false, "scrape once, dump the merged view to stdout, and exit")
		asJSON      = flag.Bool("json", false, "with -once, dump JSON (scrape status + merged snapshot) instead of Prometheus text")
		quiet       = flag.Bool("quiet", false, "suppress startup logging")
		logLevel    = flag.String("log-level", "info", "structured log level (debug logs each failed scrape)")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetstat:", err)
		return 2
	}
	logger := obs.NewLogger(os.Stderr, level)

	parsed, err := parseTargets(*targets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetstat:", err)
		return 2
	}
	scraper, err := fleet.New(fleet.Config{
		Targets:     parsed,
		Interval:    *interval,
		Timeout:     *timeout,
		StaleAfter:  *staleAfter,
		Concurrency: *concurrency,
		Logger:      logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetstat:", err)
		return 2
	}

	if *once {
		return runOnce(scraper, *asJSON)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go scraper.Run(ctx)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		merged, err := scraper.Merged()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		merged.WritePrometheus(w)
	})
	mux.HandleFunc("GET /fleet/status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(scraper.Status())
	})
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- httpServer.Shutdown(shutdownCtx)
	}()

	if !*quiet {
		fmt.Fprintf(os.Stderr, "fleetstat: scraping %d targets every %s, serving on %s\n",
			len(parsed), *interval, *addr)
	}
	if err := httpServer.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "fleetstat:", err)
		return 1
	}
	if err := <-done; err != nil {
		fmt.Fprintln(os.Stderr, "fleetstat: shutdown:", err)
		return 1
	}
	return 0
}

// runOnce scrapes every target a single time and dumps the merged view
// to stdout. Exit status 1 means no target answered.
func runOnce(scraper *fleet.Scraper, asJSON bool) int {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ok := scraper.ScrapeOnce(ctx)
	merged, err := scraper.Merged()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetstat:", err)
		return 1
	}
	if asJSON {
		doc := struct {
			Status  []fleet.InstanceStatus `json:"status"`
			Metrics map[string]any         `json:"metrics"`
		}{scraper.Status(), merged.Snapshot()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "fleetstat:", err)
			return 1
		}
	} else if err := merged.WritePrometheus(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fleetstat:", err)
		return 1
	}
	if ok == 0 {
		fmt.Fprintln(os.Stderr, "fleetstat: no target answered")
		return 1
	}
	return 0
}

// parseTargets expands the -targets flag: "name=url" pairs or bare
// urls, scheme and /metrics path filled in when missing.
func parseTargets(spec string) ([]fleet.Target, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("no -targets given")
	}
	var out []fleet.Target
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		var t fleet.Target
		if name, url, ok := strings.Cut(item, "="); ok && !strings.Contains(name, "/") {
			t = fleet.Target{Name: strings.TrimSpace(name), URL: strings.TrimSpace(url)}
		} else {
			t = fleet.Target{URL: item}
		}
		if !strings.Contains(t.URL, "://") {
			t.URL = "http://" + t.URL
		}
		// A bare host:port scrapes the conventional metrics path.
		if rest := t.URL[strings.Index(t.URL, "://")+3:]; !strings.Contains(rest, "/") {
			t.URL += "/metrics"
		}
		out = append(out, t)
	}
	return out, nil
}
