package main

import (
	"reflect"
	"testing"

	"repro/internal/obs/fleet"
)

func TestParseTargets(t *testing.T) {
	got, err := parseTargets(" w0=localhost:8080, w1=http://10.0.0.2:8080/metrics ,localhost:9000,https://edge.example/stats")
	if err != nil {
		t.Fatal(err)
	}
	want := []fleet.Target{
		{Name: "w0", URL: "http://localhost:8080/metrics"},
		{Name: "w1", URL: "http://10.0.0.2:8080/metrics"},
		{URL: "http://localhost:9000/metrics"},
		{URL: "https://edge.example/stats"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseTargets:\n got %+v\nwant %+v", got, want)
	}
	if _, err := parseTargets("  "); err == nil {
		t.Fatal("empty -targets accepted")
	}
}
