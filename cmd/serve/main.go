// Command serve runs the batched HTTP/JSON prediction service: the
// estimation backends behind POST /v1/estimate, with named expression
// sets (GET /v1/registry), error-bounded calibrated answers, and
// automatic sim fallback outside the calibrated (p, m) range.
//
// Point it at the sweep cache a `sweep -backend calibrated -validate`
// run populated and the service starts with the persisted fits and
// error tables already loaded — no simulation before the first
// out-of-range request:
//
//	sweep -backend calibrated -validate -cache .sweepcache
//	serve -cache .sweepcache
//
//	curl -s localhost:8080/v1/registry
//	curl -s -d '{"machine":"SP2","op":"alltoall","p":32,"m":1024}' localhost:8080/v1/estimate
//	curl -s -d '[{"machine":"T3D","op":"broadcast","p":8,"m":256},
//	             {"machine":"Paragon","op":"scatter","p":32,"m":65536}]' \
//	     'localhost:8080/v1/estimate?registry=refit-default'
//	curl -s localhost:8080/metrics
//
// Without a cache the service still answers everything; calibrations
// run on first touch (or at startup with -warm) and answers simply
// carry no expected-error bound until a validation table exists.
//
// The endpoint negotiates its codec by Content-Type: JSON by default,
// NDJSON (application/x-ndjson) for line-delimited streaming, and the
// length-prefixed binary fast wire mode (application/x-estimate-wire)
// that `predict -remote` speaks — see internal/serve/wire. Answers are
// cached per scenario (-answer-cache-size) keyed by the entry's
// calibration provenance, so recalibration self-invalidates.
//
// Observability: GET /metrics exposes Prometheus-format counters and
// stage-latency histograms (plus Go runtime health and a
// serve_build_info series), GET /debug/vars the same registry as
// expvar-style JSON; -log-level debug adds one structured access-log
// line per request, and -pprof-addr starts an opt-in net/http/pprof
// listener on a separate address (its own mux — profiling is never
// reachable through the serving address). Every response carries an
// X-Trace-Id (inbound value honored, otherwise minted), and a sampled
// ring of request traces — every -trace-sample'th request plus all
// errors, degraded answers, and requests slower than -trace-slow — is
// served as line-JSON at GET /debug/traces. Many serve processes
// aggregate into one fleet view with cmd/fleetstat.
//
// Resilience: every request runs under a deadline (-request-timeout,
// or per request via the X-Estimate-Deadline-Ms header); a deadline
// that expires mid-simulation cancels the sim and answers degraded
// from the closed forms (fallback_reason "degraded_deadline", no
// bounds) instead of hanging. Admission control (-max-concurrent,
// -max-queue) sheds overload with 429 + Retry-After before it queues
// unboundedly. POST /v1/reload or SIGHUP atomically rebuilds the
// registry from the sweep cache without dropping in-flight requests;
// -chaos injects seeded faults into the fallback simulator for drills.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"syscall"
	"time"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		cacheDir  = flag.String("cache", "", "sweep cache directory (persisted fits and error tables)")
		registry  = flag.String("registry", "refit-default", "registry entry served when a request names none")
		workers   = flag.Int("workers", 0, "per-request estimation workers (0 = all cores)")
		answers   = flag.Int("answer-cache-size", 1<<18, "scenario answer-cache capacity (0 disables caching)")
		wireMode  = flag.Bool("wire", true, "serve the binary and NDJSON fast wire codecs (false = JSON only)")
		warm      = flag.Bool("warm", false, "precalibrate the default registry's triples before listening")
		quiet     = flag.Bool("quiet", false, "suppress startup logging")
		logLevel  = flag.String("log-level", "info", "structured log level (debug adds per-request access logs)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this extra address (off when empty)")
		reqTimeo  = flag.Duration("request-timeout", 30*time.Second,
			"per-request estimation deadline (0 disables; the X-Estimate-Deadline-Ms header overrides per request)")
		maxConc = flag.Int("max-concurrent", 0,
			"admission budget: requests estimating at once (0 = 2×GOMAXPROCS, negative disables admission control)")
		maxQueue = flag.Int("max-queue", 128,
			"admission queue beyond the concurrency budget; excess requests are shed with 429 + Retry-After")
		chaos = flag.String("chaos", "",
			`inject faults into the fallback simulator, e.g. "error=0.05,panic=0.01,latency=0.2:50ms,seed=7" (dev only)`)
		traceRing = flag.Int("trace-ring", 256,
			"sampled request-trace ring capacity, served at GET /debug/traces (0 disables tracing)")
		traceSample = flag.Int("trace-sample", 100,
			"capture every Nth ok request into the trace ring (0 captures only errors, degraded, and slow requests)")
		traceSlow = flag.Duration("trace-slow", time.Second,
			"always capture requests at least this slow (0 disables the slow trigger)")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 2
	}
	logger := obs.NewLogger(os.Stderr, level)

	// One metric registry spans every layer: the serve counters, the
	// estimation layer's memo/expression series, and the sim kernel's
	// process-wide event totals (read at export time via CounterFunc).
	obsReg := obs.NewRegistry()
	metrics := serve.NewMetrics(obsReg)
	sim.EnableCounters(true)
	obsReg.CounterFunc("sim_kernel_events_total",
		"discrete events executed by simulation kernels, process-wide", sim.KernelEvents)
	obsReg.CounterFunc("sim_kernel_wakeups_total",
		"process wakeups scheduled by simulation kernels, process-wide", sim.KernelWakeups)
	runtimeMetrics(obsReg)
	obsReg.Gauge("serve_build_info",
		"constant 1; the labels carry the serving configuration and build version",
		obs.Label{Key: "registry", Value: *registry},
		obs.Label{Key: "version", Value: buildVersion()}).Set(1)

	// makeRegistry builds the full serving registry from scratch —
	// reopening the sweep cache so a reload picks up fits and error
	// tables persisted since startup. The sample memo is shared across
	// reloads: simulator measurements are methodology-keyed and a
	// recalibration does not invalidate them.
	memo := estimate.NewSampleMemo()
	makeRegistry := func() (*estimate.Registry, int, error) {
		cache, err := sweep.OpenCache(*cacheDir)
		if err != nil {
			return nil, 0, err
		}
		cfg := estimate.RegistryConfig{Memo: memo, Workers: *workers, Obs: obsReg}
		if cache != nil {
			cfg.Store = cache
		}
		r := estimate.StandardRegistry(cfg)
		return r, sweep.AttachBounds(r, cache), nil
	}
	reg, nBounds, err := makeRegistry()
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 1
	}
	entry, err := reg.Get(*registry)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 2
	}
	if !*quiet && *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "serve: %d of %d registry entries carry validated error bounds\n",
			nBounds, len(reg.Names()))
	}
	if *warm {
		warmUp(entry, *workers, *quiet)
	}

	// The fallback simulator, optionally wrapped in the fault injector.
	// Chaos mode is a dev tool: the wrapper's provenance carries the
	// fault spec, so its answers never share cache entries with clean
	// runs.
	var fallback estimate.Backend = estimate.Sim{Memo: memo}
	if *chaos != "" {
		fb, err := estimate.ParseFaultSpec(*chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve: -chaos:", err)
			return 2
		}
		fb.Inner = fallback
		fallback = &fb
		fmt.Fprintf(os.Stderr, "serve: CHAOS MODE: %s\n", fallback.Provenance())
	}

	concurrent := *maxConc
	if concurrent == 0 {
		concurrent = 2 * runtime.GOMAXPROCS(0)
	}
	server := &serve.Server{
		Registry:    reg,
		Default:     *registry,
		Sim:         fallback,
		Timeout:     *reqTimeo,
		Gate:        serve.NewGate(concurrent, *maxQueue),
		Reloader:    func() (*estimate.Registry, error) { r, _, err := makeRegistry(); return r, err },
		Workers:     *workers,
		Obs:         metrics,
		Logger:      logger,
		Cache:       serve.NewAnswerCache(*answers),
		DisableWire: !*wireMode,
	}
	if *traceRing > 0 {
		server.Traces = obs.NewTraceRing(*traceRing)
		server.TraceSample = *traceSample
		server.TraceSlow = *traceSlow
	}
	if *pprofAddr != "" {
		// pprof gets its own mux on its own listener: the profiling
		// handlers are never reachable through the serving address, and
		// the serving mux never inherits DefaultServeMux registrations.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				fmt.Fprintln(os.Stderr, "serve: pprof:", err)
			}
		}()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "serve: pprof on %s\n", *pprofAddr)
		}
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           server.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	// SIGHUP hot-reloads the registry without dropping a request: the
	// old registry serves until the new one is fully built, and the
	// answer cache self-invalidates through per-entry epochs.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if err := server.ReloadRegistry(); err != nil {
				logger.Error("registry reload failed", obs.F("error", err.Error()))
			} else {
				logger.Info("registry reloaded", obs.F("default", *registry))
			}
		}
	}()

	// SIGINT/SIGTERM drain in-flight requests before exiting, so a
	// deploy never truncates a half-answered batch.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- httpServer.Shutdown(shutdownCtx)
	}()

	if !*quiet {
		fmt.Fprintf(os.Stderr, "serve: listening on %s (default registry %q)\n", *addr, *registry)
	}
	if err := httpServer.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 1
	}
	if err := <-done; err != nil {
		fmt.Fprintln(os.Stderr, "serve: shutdown:", err)
		return 1
	}
	requests, scenarios, fallbacks := metrics.Totals()
	drained := []obs.Field{
		obs.F("requests", requests),
		obs.F("scenarios", scenarios),
		obs.F("fallbacks", fallbacks),
	}
	if server.Traces != nil {
		drained = append(drained, obs.F("traces_sampled", server.Traces.Total()))
		if last, ok := server.Traces.Last(); ok {
			drained = append(drained, obs.F("last_trace_id", last.TraceID))
		}
	}
	logger.Info("drained", drained...)
	if !*quiet {
		fmt.Fprintln(os.Stderr, "serve: drained, bye")
	}
	return 0
}

// runtimeMetrics bridges Go runtime health into the metric registry —
// read lazily at export time through the CounterFunc hooks, so idle
// servers pay nothing between scrapes.
func runtimeMetrics(reg *obs.Registry) {
	reg.CounterFunc("go_goroutines",
		"live goroutines, read at scrape time",
		func() uint64 { return uint64(runtime.NumGoroutine()) })
	reg.CounterFunc("go_heap_alloc_bytes",
		"heap bytes allocated and still reachable, read at scrape time",
		func() uint64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return ms.HeapAlloc
		})
	reg.CounterFunc("go_gc_pause_total_ns",
		"cumulative stop-the-world GC pause nanoseconds",
		func() uint64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return ms.PauseTotalNs
		})
}

// buildVersion is the main module's version as stamped by the Go
// toolchain — "(devel)" for plain `go build` trees.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// warmUp precalibrates every (machine, op, algorithm) triple of the
// default entry's backend, so the first batch is served warm. Entries
// without a calibration step (paper-table3) warm instantly.
func warmUp(entry *estimate.Entry, workers int, quiet bool) {
	cal, ok := entry.Backend.(*estimate.Calibrated)
	if !ok {
		return
	}
	var triples []estimate.Triple
	for _, mach := range machine.All() {
		for _, op := range machine.Ops {
			for _, alg := range estimate.ValidAlgorithms(mach, op) {
				triples = append(triples, estimate.Triple{Machine: mach, Op: op, Alg: alg})
			}
		}
	}
	start := time.Now()
	cal.Precalibrate(triples, workers)
	if !quiet {
		fmt.Fprintf(os.Stderr, "serve: warmed %d calibration triples in %s\n",
			len(triples), time.Since(start).Round(time.Millisecond))
	}
}
