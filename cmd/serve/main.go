// Command serve runs the batched HTTP/JSON prediction service: the
// estimation backends behind POST /v1/estimate, with named expression
// sets (GET /v1/registry), error-bounded calibrated answers, and
// automatic sim fallback outside the calibrated (p, m) range.
//
// Point it at the sweep cache a `sweep -backend calibrated -validate`
// run populated and the service starts with the persisted fits and
// error tables already loaded — no simulation before the first
// out-of-range request:
//
//	sweep -backend calibrated -validate -cache .sweepcache
//	serve -cache .sweepcache
//
//	curl -s localhost:8080/v1/registry
//	curl -s -d '{"machine":"SP2","op":"alltoall","p":32,"m":1024}' localhost:8080/v1/estimate
//	curl -s -d '[{"machine":"T3D","op":"broadcast","p":8,"m":256},
//	             {"machine":"Paragon","op":"scatter","p":32,"m":65536}]' \
//	     'localhost:8080/v1/estimate?registry=refit-default'
//	curl -s localhost:8080/metrics
//
// Without a cache the service still answers everything; calibrations
// run on first touch (or at startup with -warm) and answers simply
// carry no expected-error bound until a validation table exists.
//
// The endpoint negotiates its codec by Content-Type: JSON by default,
// NDJSON (application/x-ndjson) for line-delimited streaming, and the
// length-prefixed binary fast wire mode (application/x-estimate-wire)
// that `predict -remote` speaks — see internal/serve/wire. Answers are
// cached per scenario (-answer-cache-size) keyed by the entry's
// calibration provenance, so recalibration self-invalidates.
//
// Observability: GET /metrics exposes Prometheus-format counters and
// stage-latency histograms, GET /debug/vars the same registry as
// expvar-style JSON; -log-level debug adds one structured access-log
// line per request, and -pprof-addr starts an opt-in net/http/pprof
// listener on a separate address.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers on DefaultServeMux; exposed only via -pprof-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		cacheDir  = flag.String("cache", "", "sweep cache directory (persisted fits and error tables)")
		registry  = flag.String("registry", "refit-default", "registry entry served when a request names none")
		workers   = flag.Int("workers", 0, "per-request estimation workers (0 = all cores)")
		answers   = flag.Int("answer-cache-size", 1<<18, "scenario answer-cache capacity (0 disables caching)")
		wireMode  = flag.Bool("wire", true, "serve the binary and NDJSON fast wire codecs (false = JSON only)")
		warm      = flag.Bool("warm", false, "precalibrate the default registry's triples before listening")
		quiet     = flag.Bool("quiet", false, "suppress startup logging")
		logLevel  = flag.String("log-level", "info", "structured log level (debug adds per-request access logs)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this extra address (off when empty)")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 2
	}
	logger := obs.NewLogger(os.Stderr, level)

	cache, err := sweep.OpenCache(*cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 1
	}

	// One metric registry spans every layer: the serve counters, the
	// estimation layer's memo/expression series, and the sim kernel's
	// process-wide event totals (read at export time via CounterFunc).
	obsReg := obs.NewRegistry()
	metrics := serve.NewMetrics(obsReg)
	sim.EnableCounters(true)
	obsReg.CounterFunc("sim_kernel_events_total",
		"discrete events executed by simulation kernels, process-wide", sim.KernelEvents)
	obsReg.CounterFunc("sim_kernel_wakeups_total",
		"process wakeups scheduled by simulation kernels, process-wide", sim.KernelWakeups)

	memo := estimate.NewSampleMemo()
	cfg := estimate.RegistryConfig{Memo: memo, Workers: *workers, Obs: obsReg}
	if cache != nil {
		cfg.Store = cache
	}
	reg := estimate.StandardRegistry(cfg)
	entry, err := reg.Get(*registry)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 2
	}
	if n := sweep.AttachBounds(reg, cache); !*quiet && cache != nil {
		fmt.Fprintf(os.Stderr, "serve: %d of %d registry entries carry validated error bounds\n",
			n, len(reg.Names()))
	}
	if *warm {
		warmUp(entry, *workers, *quiet)
	}

	server := &serve.Server{
		Registry:    reg,
		Default:     *registry,
		Sim:         estimate.Sim{Memo: memo},
		Workers:     *workers,
		Obs:         metrics,
		Logger:      logger,
		Cache:       serve.NewAnswerCache(*answers),
		DisableWire: !*wireMode,
	}
	if *pprofAddr != "" {
		go func() {
			// nil handler = DefaultServeMux, where net/http/pprof lives.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "serve: pprof:", err)
			}
		}()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "serve: pprof on %s\n", *pprofAddr)
		}
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           server.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGINT/SIGTERM drain in-flight requests before exiting, so a
	// deploy never truncates a half-answered batch.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- httpServer.Shutdown(shutdownCtx)
	}()

	if !*quiet {
		fmt.Fprintf(os.Stderr, "serve: listening on %s (default registry %q)\n", *addr, *registry)
	}
	if err := httpServer.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 1
	}
	if err := <-done; err != nil {
		fmt.Fprintln(os.Stderr, "serve: shutdown:", err)
		return 1
	}
	requests, scenarios, fallbacks := metrics.Totals()
	logger.Info("drained",
		obs.F("requests", requests),
		obs.F("scenarios", scenarios),
		obs.F("fallbacks", fallbacks))
	if !*quiet {
		fmt.Fprintln(os.Stderr, "serve: drained, bye")
	}
	return 0
}

// warmUp precalibrates every (machine, op, algorithm) triple of the
// default entry's backend, so the first batch is served warm. Entries
// without a calibration step (paper-table3) warm instantly.
func warmUp(entry *estimate.Entry, workers int, quiet bool) {
	cal, ok := entry.Backend.(*estimate.Calibrated)
	if !ok {
		return
	}
	var triples []estimate.Triple
	for _, mach := range machine.All() {
		for _, op := range machine.Ops {
			for _, alg := range estimate.ValidAlgorithms(mach, op) {
				triples = append(triples, estimate.Triple{Machine: mach, Op: op, Alg: alg})
			}
		}
	}
	start := time.Now()
	cal.Precalibrate(triples, workers)
	if !quiet {
		fmt.Fprintf(os.Stderr, "serve: warmed %d calibration triples in %s\n",
			len(triples), time.Since(start).Round(time.Millisecond))
	}
}
