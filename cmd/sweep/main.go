// Command sweep runs a user-defined scenario grid — machines ×
// operations × algorithm variants × machine sizes × message lengths —
// through the sharded sweep engine and emits markdown and CSV reports.
//
// The default grid covers all three machines, the paper's seven
// operations, every registered algorithm variant, the paper's
// factor-of-four message lengths, and two machine sizes: several
// hundred scenarios, sharded across all CPU cores. A content-keyed
// cache makes repeated runs near-instant and survives preset edits
// (stale entries simply stop matching).
//
// Usage:
//
//	sweep                                    # default grid, report to stdout
//	sweep -cache .sweepcache                 # warm runs are near-instant
//	sweep -machines SP2,T3D -ops alltoall -algs all -p 8,32,64
//	sweep -algs default -p 2,4,8,16,32,64,128 -out grid.md -csv grid.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/sweep"
)

func main() {
	var (
		machines = flag.String("machines", "", "comma-separated machine presets (default: all)")
		ops      = flag.String("ops", "", "comma-separated operations (default: the paper's seven)")
		algs     = flag.String("algs", "all", `algorithm variants: "all", "default", or a comma-separated list`)
		sizesF   = flag.String("p", "8,32", "comma-separated machine sizes")
		lengthsF = flag.String("m", "", "comma-separated message lengths in bytes (default: the paper's sweep)")
		workers  = flag.Int("workers", 0, "worker shards (0 = all cores)")
		cacheDir = flag.String("cache", "", "directory for the content-keyed result cache")
		outPath  = flag.String("out", "-", `markdown report path ("-" = stdout)`)
		csvPath  = flag.String("csv", "", "also write per-scenario CSV here")
		seed     = flag.Int64("seed", 1, "base simulation seed")
		derive   = flag.Bool("derive-seeds", false, "give every scenario its own deterministic seed")
		paperCfg = flag.Bool("paper", false, "paper-faithful methodology (warm-up 2, k=20, 5 reps; slow)")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()

	cfg := measure.Fast()
	if *paperCfg {
		cfg = measure.Paper()
	}
	cfg.Seed = *seed

	spec := sweep.Spec{
		Machines:    splitList(*machines),
		Ops:         parseOps(*ops),
		Sizes:       parseInts(*sizesF, "p"),
		Lengths:     parseInts(*lengthsF, "m"),
		Config:      cfg,
		DeriveSeeds: *derive,
	}
	specOps := spec.Ops
	if len(specOps) == 0 {
		specOps = machine.Ops
	}
	switch *algs {
	case "default":
	case "all", "":
		spec.Algorithms = sweep.AllAlgorithms(specOps)
	default:
		spec.Algorithms = map[machine.Op][]string{}
		for _, op := range specOps {
			spec.Algorithms[op] = splitList(*algs)
		}
	}

	scns, err := spec.Expand()
	if err != nil {
		fmt.Fprintln(os.Stderr, err) // already "sweep:"-prefixed
		os.Exit(2)
	}
	if len(scns) == 0 {
		fmt.Fprintln(os.Stderr, "sweep: the spec expands to zero scenarios")
		os.Exit(2)
	}
	cache, err := sweep.OpenCache(*cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	start := time.Now()
	runner := &sweep.Runner{Workers: *workers, Cache: cache}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "sweep: %d scenarios\n", len(scns))
		step := len(scns) / 20
		if step < 1 {
			step = 1
		}
		runner.OnProgress = func(p sweep.Progress) {
			if p.Done%step == 0 || p.Done == p.Total {
				fmt.Fprintf(os.Stderr, "  %d/%d (%d%%) %s\n",
					p.Done, p.Total, 100*p.Done/p.Total, time.Since(start).Round(time.Second))
			}
		}
	}
	results := runner.Run(scns)
	cached := 0
	for _, r := range results {
		if r.Cached {
			cached++
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "sweep: %d scenarios (%d cached) in %s\n",
			len(results), cached, time.Since(start).Round(time.Millisecond))
	}

	title := fmt.Sprintf("Scenario sweep — %d scenarios", len(results))
	if *outPath == "-" {
		err = sweep.WriteMarkdown(os.Stdout, title, results)
	} else {
		err = writeFile(*outPath, func(f *os.File) error {
			return sweep.WriteMarkdown(f, title, results)
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, func(f *os.File) error {
			return sweep.WriteCSV(f, results)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
	}
}

func writeFile(path string, fill func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseOps(s string) []machine.Op {
	var out []machine.Op
	for _, name := range splitList(s) {
		out = append(out, machine.Op(name))
	}
	return out
}

func parseInts(s, what string) []int {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: bad -%s value %q\n", what, part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
