// Command sweep runs a user-defined scenario grid — machines ×
// operations × algorithm variants × machine sizes × message lengths —
// through the sharded sweep engine and emits markdown and CSV reports.
//
// The grid can be answered by any estimation backend:
//
//	-backend sim         the discrete-event simulator (slow, exact; default)
//	-backend analytic    the paper's Table 3 expressions in closed form (instant)
//	-backend calibrated  expressions fitted from a seeded sim sweep, then
//	                     served in closed form (measure once, predict forever)
//
// The default grid covers all three machines, the paper's seven
// operations, every registered algorithm variant, the paper's
// factor-of-four message lengths, and two machine sizes: several
// hundred scenarios, sharded across all CPU cores. A content-keyed
// cache makes repeated runs near-instant and survives preset edits and
// backend switches (stale entries simply stop matching); it also
// persists the calibrated backend's fitted expressions.
//
// Usage:
//
//	sweep                                    # default grid, report to stdout
//	sweep -cache .sweepcache                 # warm runs are near-instant
//	sweep -backend calibrated -cache .sweepcache
//	sweep -validate                          # sim vs calibrated error report
//	sweep -validate -piecewise               # protocol-aware piecewise fits
//	sweep -machines SP2,T3D -ops alltoall -algs all -p 8,32,64
//	sweep -algs default -p 2,4,8,16,32,64,128 -out grid.md -csv grid.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// main delegates to run so deferred cleanups — most importantly
// stopping the CPU profile and snapshotting the heap profile — fire on
// every exit path, not just success.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		machines   = flag.String("machines", "", "comma-separated machine presets (default: all)")
		ops        = flag.String("ops", "", "comma-separated operations (default: the paper's seven)")
		algs       = flag.String("algs", "all", `algorithm variants: "all", "default", or a comma-separated list`)
		sizesF     = flag.String("p", "8,32", "comma-separated machine sizes")
		lengthsF   = flag.String("m", "", "comma-separated message lengths in bytes (default: the paper's sweep)")
		backendF   = flag.String("backend", "sim", "estimation backend: sim, analytic, or calibrated")
		validate   = flag.Bool("validate", false, "run sim and the -backend estimator side by side and report relative errors (sim -backend implies calibrated)")
		workers    = flag.Int("workers", 0, "worker shards (0 = all cores); also bounds the calibration pool")
		cacheDir   = flag.String("cache", "", "directory for the content-keyed result and expression cache")
		outPath    = flag.String("out", "-", `markdown report path ("-" = stdout)`)
		csvPath    = flag.String("csv", "", "also write per-scenario CSV here")
		seed       = flag.Int64("seed", 1, "base simulation seed")
		derive     = flag.Bool("derive-seeds", false, "give every scenario its own deterministic seed")
		paperCfg   = flag.Bool("paper", false, "paper-faithful methodology (warm-up 2, k=20, 5 reps; slow)")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
		adaptive   = flag.Bool("adaptive", false, "calibrated backend: stop a triple's calibration sweep once the fit stabilizes (changes fits; cache keys carry the planner)")
		tolF       = flag.Float64("tol", 0, "adaptive planner / piecewise probe coefficient-stability tolerance (0 = default 0.02)")
		piecewise  = flag.Bool("piecewise", false, "calibrated backend: fit protocol-aware piecewise segments per triple instead of one affine model (closes the mid-length error gap; cache keys carry the fit family)")
		maxSeg     = flag.Int("max-segments", 0, "piecewise fit: maximum number of affine segments (0 = no cap beyond detected regime boundaries)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the sweep here")
		memProfile = flag.String("memprofile", "", "write a heap profile (taken after the sweep) here")
		obsF       = flag.Bool("obs", false, "collect run metrics (cache outcomes, phase timings, memo and kernel counters) and print the snapshot to stderr afterwards")
	)
	flag.Parse()

	var obsReg *obs.Registry
	if *obsF {
		obsReg = newObsRegistry()
	}

	cfg := measure.Fast()
	if *paperCfg {
		cfg = measure.Paper()
	}
	cfg.Seed = *seed

	spec := sweep.Spec{
		Machines:    splitList(*machines),
		Ops:         parseOps(*ops),
		Sizes:       parseInts(*sizesF, "p"),
		Lengths:     parseInts(*lengthsF, "m"),
		Config:      cfg,
		DeriveSeeds: *derive,
	}
	specOps := spec.Ops
	if len(specOps) == 0 {
		specOps = machine.Ops
	}
	switch *algs {
	case "default":
	case "all", "":
		spec.Algorithms = sweep.AllAlgorithms(specOps)
	default:
		spec.Algorithms = map[machine.Op][]string{}
		for _, op := range specOps {
			spec.Algorithms[op] = splitList(*algs)
		}
	}

	// Profiles bracket the actual sweep work (parsing is already done);
	// the deferred stop/snapshot runs on every run() exit path.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live set before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
			}
		}()
	}

	scns, err := spec.Expand()
	if err != nil {
		fmt.Fprintln(os.Stderr, err) // already "sweep:"-prefixed
		return 2
	}
	if len(scns) == 0 {
		fmt.Fprintln(os.Stderr, "sweep: the spec expands to zero scenarios")
		return 2
	}
	cache, err := sweep.OpenCache(*cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		return 1
	}

	planner := estimate.Planner{Adaptive: *adaptive, RelTol: *tolF}
	fitCfg := estimate.FitConfig{Piecewise: *piecewise, MaxSegments: *maxSeg, RelTol: *tolF}

	if *validate {
		code := runValidate(scns, spec, *backendF, planner, fitCfg, cache, *workers, *outPath, *csvPath, *quiet, obsReg)
		dumpObs(obsReg)
		return code
	}

	memo := estimate.NewSampleMemo()
	backend, err := buildBackend(*backendF, spec, cfg, planner, fitCfg, cache, memo, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		return 2
	}
	if obsReg != nil {
		instrumentBackend(obsReg, memo, backend)
	}
	if err := checkAnalyticCoverage(backend, scns); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		return 2
	}

	start := time.Now()
	runner := &sweep.Runner{Workers: *workers, Cache: cache, Backend: backend, Metrics: newSweepMetrics(obsReg)}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "sweep: %d scenarios via the %s backend\n", len(scns), backend.Name())
		runner.OnProgress = progressPrinter(len(scns), start)
	}
	results := runner.Run(scns)
	cached := 0
	for _, r := range results {
		if r.Cached {
			cached++
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "sweep: %d scenarios (%d cached) in %s\n",
			len(results), cached, time.Since(start).Round(time.Millisecond))
	}

	title := fmt.Sprintf("Scenario sweep — %d scenarios (%s backend)", len(results), backend.Name())
	if err := emitTo(*outPath, func(w io.Writer) error {
		return sweep.WriteMarkdown(w, title, results)
	}); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		return 1
	}
	if *csvPath != "" {
		if err := emitTo(*csvPath, func(w io.Writer) error {
			return sweep.WriteCSV(w, results)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			return 1
		}
	}
	dumpObs(obsReg)
	return 0
}

// newObsRegistry assembles the -obs metric registry: the sweep and
// estimation series register themselves as they are wired; the sim
// kernel's process-wide totals are read at export time.
func newObsRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	sim.EnableCounters(true)
	reg.CounterFunc("sim_kernel_events_total",
		"discrete events executed by simulation kernels, process-wide", sim.KernelEvents)
	reg.CounterFunc("sim_kernel_wakeups_total",
		"process wakeups scheduled by simulation kernels, process-wide", sim.KernelWakeups)
	return reg
}

// newSweepMetrics registers the runner series, or nothing without -obs.
func newSweepMetrics(reg *obs.Registry) *sweep.Metrics {
	if reg == nil {
		return nil
	}
	return sweep.NewMetrics(reg)
}

// instrumentBackend wires the estimation-layer series: the memo always,
// the expression-store counters when the backend calibrates.
func instrumentBackend(reg *obs.Registry, memo *estimate.SampleMemo, b estimate.Backend) {
	if c, ok := b.(*estimate.Calibrated); ok {
		estimate.Instrument(reg, memo, c)
		return
	}
	estimate.Instrument(reg, memo)
}

// dumpObs prints the -obs snapshot in the Prometheus text format; a nil
// registry (no -obs) prints nothing.
func dumpObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "sweep: metrics snapshot:")
	if err := reg.WritePrometheus(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
	}
}

// runValidate executes the grid under sim and a closed-form backend and
// emits the relative-error validation report (plus, with -csv, the
// per-scenario rows of both passes, distinguished by the backend
// column). It returns the process exit code.
func runValidate(scns []sweep.Scenario, spec sweep.Spec, backendName string, planner estimate.Planner, fitCfg estimate.FitConfig, cache *sweep.Cache, workers int, outPath, csvPath string, quiet bool, obsReg *obs.Registry) int {
	if backendName == "sim" || backendName == "" {
		backendName = "calibrated" // validating sim against itself is vacuous
	}
	// One memo across both passes: the sim pass and a calibrated
	// backend's calibration sweep measure many identical cells, so each
	// is simulated once.
	memo := estimate.NewSampleMemo()
	candidate, err := buildBackend(backendName, spec, scnConfig(scns, spec), planner, fitCfg, cache, memo, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		return 2
	}
	if err := checkAnalyticCoverage(candidate, scns); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		return 2
	}
	if obsReg != nil {
		instrumentBackend(obsReg, memo, candidate)
	}
	metrics := newSweepMetrics(obsReg)

	progress := func(string) func(sweep.Progress) { return nil }
	if !quiet {
		progress = func(pass string) func(sweep.Progress) {
			fmt.Fprintf(os.Stderr, "sweep: validate: %s pass over %d scenarios\n", pass, len(scns))
			return progressPrinter(len(scns), time.Now())
		}
	}

	simStart := time.Now()
	simResults := (&sweep.Runner{Workers: workers, Cache: cache, Backend: estimate.Sim{Memo: memo},
		OnProgress: progress("sim"), Metrics: metrics}).Run(scns)
	simSecs := time.Since(simStart).Seconds()

	estStart := time.Now()
	estResults := (&sweep.Runner{Workers: workers, Cache: cache, Backend: candidate,
		OnProgress: progress(candidate.Name()), Metrics: metrics}).Run(scns)
	estSecs := time.Since(estStart).Seconds()

	// A second pass with the calibration already in memory is the
	// serving-speed number the calibrated backend exists for.
	warmStart := time.Now()
	(&sweep.Runner{Workers: workers, Backend: candidate, Metrics: metrics}).Run(scns)
	warmSecs := time.Since(warmStart).Seconds()

	pairs, err := sweep.Pair(simResults, estResults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		return 1
	}
	// Persist the per-(machine, op, m) error table next to the fits it
	// validates, so the serving layer can attach expected-error bounds
	// without re-sweeping (sweep.AttachBounds finds it by content key).
	if cache != nil {
		table := sweep.BuildErrorTable(candidate, pairs)
		id := fmt.Sprintf("%s error table (%d cells)", candidate.Name(), len(table.Cells))
		if err := cache.PutErrorTable(estimate.ErrorTableKey(candidate), id, table); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
		} else if !quiet {
			fmt.Fprintf(os.Stderr, "sweep: validate: persisted %d-cell error table for the %s backend\n",
				len(table.Cells), candidate.Name())
		}
	}
	timing := &sweep.ValidationTiming{
		Backend:    candidate.Name(),
		RefSeconds: simSecs, EstSeconds: estSecs, WarmSeconds: warmSecs,
		RefCached: countCached(simResults), EstCached: countCached(estResults),
	}
	title := fmt.Sprintf("Validation — %s vs sim over %d scenarios", candidate.Name(), len(scns))
	if err := emitTo(outPath, func(w io.Writer) error {
		return sweep.WriteValidation(w, title, pairs, timing)
	}); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		return 1
	}
	if csvPath != "" {
		both := append(append([]sweep.Result(nil), simResults...), estResults...)
		if err := emitTo(csvPath, func(w io.Writer) error {
			return sweep.WriteCSV(w, both)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			return 1
		}
	}
	return 0
}

func countCached(results []sweep.Result) int {
	n := 0
	for _, r := range results {
		if r.Cached {
			n++
		}
	}
	return n
}

// buildBackend constructs the named estimation backend. The calibrated
// backend calibrates over the grid's own sizes, lengths, and
// methodology, so its fits interpolate exactly where they are asked;
// memo and workers feed its measurement dedup and calibration pool,
// and fitCfg selects the expression family (affine vs. piecewise).
func buildBackend(name string, spec sweep.Spec, cfg measure.Config, planner estimate.Planner, fitCfg estimate.FitConfig, cache *sweep.Cache, memo *estimate.SampleMemo, workers int) (estimate.Backend, error) {
	switch name {
	case "sim", "":
		return estimate.Sim{Memo: memo}, nil
	case "analytic":
		return estimate.PaperAnalytic(), nil
	case "calibrated":
		c := &estimate.Calibrated{
			Config: cfg, Sizes: spec.Sizes, Lengths: spec.Lengths,
			Planner: planner, Fit: fitCfg, Memo: memo, Workers: workers,
		}
		if cache != nil {
			c.Store = cache
		}
		return c, nil
	default:
		return nil, fmt.Errorf("unknown backend %q (want sim, analytic, or calibrated)", name)
	}
}

// scnConfig returns the methodology the scenarios run under (the
// spec's, unless expansion defaulted it).
func scnConfig(scns []sweep.Scenario, spec sweep.Spec) measure.Config {
	if spec.Config != (measure.Config{}) {
		return spec.Config
	}
	return scns[0].Config
}

// checkAnalyticCoverage rejects grids the paper's Table 3 cannot
// answer (e.g. allgather) before the runner panics mid-sweep.
func checkAnalyticCoverage(b estimate.Backend, scns []sweep.Scenario) error {
	a, ok := b.(*estimate.Analytic)
	if !ok {
		return nil
	}
	for _, sc := range scns {
		if !a.Covers(sc.Machine, sc.Op) {
			return fmt.Errorf("the analytic expression set has no %s/%s entry", sc.Machine, sc.Op)
		}
	}
	return nil
}

func progressPrinter(total int, start time.Time) func(sweep.Progress) {
	step := total / 20
	if step < 1 {
		step = 1
	}
	return func(p sweep.Progress) {
		if p.Done%step == 0 || p.Done == p.Total {
			fmt.Fprintf(os.Stderr, "  %d/%d (%d%%) %s\n",
				p.Done, p.Total, 100*p.Done/p.Total, time.Since(start).Round(time.Second))
		}
	}
}

// emitTo writes through fill to path, "-" meaning stdout.
func emitTo(path string, fill func(io.Writer) error) error {
	if path == "-" {
		return fill(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseOps(s string) []machine.Op {
	var out []machine.Op
	for _, name := range splitList(s) {
		out = append(out, machine.Op(name))
	}
	return out
}

func parseInts(s, what string) []int {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: bad -%s value %q\n", what, part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
