// Command figures regenerates every figure and table of the paper's
// evaluation section from simulator measurements.
//
// Usage:
//
//	figures -artifact fig1          # startup latencies (Fig. 1)
//	figures -artifact table3        # refit the timing expressions
//	figures -artifact spot          # the paper's quoted spot values
//	figures -artifact all           # everything
//	figures -artifact fig2 -csv     # CSV for external plotting
//	figures -artifact fig1 -paper   # full paper methodology (slow)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/model"
	"repro/internal/paper"
	"repro/internal/report"
)

func main() {
	var (
		artifact = flag.String("artifact", "all", "fig1..fig5, table3, spot, or all")
		csv      = flag.Bool("csv", false, "emit CSV instead of tables (figures only)")
		paperCfg = flag.Bool("paper", false, "paper-faithful methodology (k=20, 5 reps; slow)")
		maxP     = flag.Int("maxp", 0, "cap the machine-size sweep (0 = paper sweep)")
	)
	flag.Parse()

	cfg := measure.Fast()
	if *paperCfg {
		cfg = measure.Paper()
	}
	opts := []core.Option{}
	if *maxP > 0 {
		opts = append(opts, core.WithMaxNodes(*maxP))
	}
	e := core.New(cfg, opts...)
	out := os.Stdout

	run := func(id string) {
		switch id {
		case "fig1":
			for _, f := range e.Fig1() {
				emit(&f, *csv)
			}
		case "fig2":
			for _, f := range e.Fig2() {
				emit(&f, *csv)
			}
		case "fig3":
			for _, f := range e.Fig3() {
				emit(&f, *csv)
			}
		case "fig4":
			rows := e.Fig4()
			fmt.Fprintln(out, "Fig. 4: startup (#) / transmission (·) breakdown (p=32, m=1 KB)")
			var bars []report.Bar
			for _, r := range rows {
				bars = append(bars, report.NewStackedBar(
					fmt.Sprintf("%s/%s", r.Machine, r.Op), r.Startup, r.Transmission))
			}
			report.BarChart(out, "", "µs", bars, 50)
		case "fig5":
			rows := e.Fig5()
			fmt.Fprintln(out, "Fig. 5: aggregated bandwidths R∞(p); paper values in parentheses")
			pr := model.FromPaper()
			var bars []report.Bar
			for _, r := range rows {
				ref := pr.Bandwidth(r.Machine, r.Op, r.P)
				bars = append(bars, report.NewBar(
					fmt.Sprintf("%s/%s p=%d (paper %.0f)", r.Machine, r.Op, r.P, ref), r.MBs))
			}
			report.BarChart(out, "", "MB/s", bars, 50)
		case "table3":
			fitted := e.Table3()
			report.WriteExpressionTable(out,
				"Table 3: timing expressions (µs; m in bytes; log base 2)",
				e.Table3Rows(fitted))
		case "spot":
			report.WriteComparisons(out, "Paper spot values vs reproduction", e.SpotChecks())
		default:
			fmt.Fprintf(os.Stderr, "figures: unknown artifact %q\n", id)
			os.Exit(2)
		}
	}

	if *artifact == "all" {
		for _, a := range paper.Artifacts {
			run(a.ID)
			fmt.Fprintln(out)
		}
		run("spot")
	} else {
		run(*artifact)
	}
}

func emit(f *report.Figure, csv bool) {
	if csv {
		f.WriteCSV(os.Stdout)
	} else {
		f.WriteTable(os.Stdout)
	}
	fmt.Println()
}
