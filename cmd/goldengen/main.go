// Command goldengen regenerates the determinism goldens under
// testdata/: the markdown report of a fixed sim sweep grid and the
// calibrated expressions of every (machine, op, algorithm) triple over
// the same grid (see internal/golden). The committed goldens were
// produced by the pre-optimization engine (PR 2 state); the determinism
// tests compare every later engine against them byte for byte, so
// REGENERATING THEM FORFEITS THAT PROTECTION — only do it when the
// measured physics (machine presets, methodology, algorithms) changes
// on purpose.
//
// Usage:
//
//	go run ./cmd/goldengen [-dir testdata]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/estimate"
	"repro/internal/golden"
	"repro/internal/sweep"
)

func main() {
	dir := flag.String("dir", "testdata", "output directory")
	flag.Parse()
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}

	scns, err := golden.Scenarios()
	if err != nil {
		fatal(err)
	}
	results := (&sweep.Runner{Backend: estimate.Sim{Memo: estimate.NewSampleMemo()}}).Run(scns)
	md, err := golden.Markdown(results)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(*dir, "golden_sweep_sim.md"), md, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "goldengen: %d scenarios -> golden_sweep_sim.md\n", len(results))

	exprs := golden.Expressions(golden.Calibrated())
	blob, err := golden.ExpressionsJSON(exprs)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(*dir, "golden_expressions.json"), blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "goldengen: %d triples -> golden_expressions.json\n", len(exprs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "goldengen:", err)
	os.Exit(1)
}
