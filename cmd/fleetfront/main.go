// Command fleetfront runs the fleet's sharding data plane: an HTTP
// front that accepts the exact POST /v1/estimate surface a single
// serve worker exposes — JSON, NDJSON, or the binary wire codec —
// and shards each request's scenarios across N workers by a
// deterministic (machine, op, algorithm, p, m) hash, so every worker's
// answer cache sees a stable partition of the keyspace:
//
//	serve -addr :8081 -cache .sweepcache &
//	serve -addr :8082 -cache .sweepcache &
//	fleetfront -addr :8080 -workers w0=localhost:8081,w1=localhost:8082
//
//	curl -s -d '[{"machine":"SP2","op":"alltoall","p":32,"m":1024},
//	             {"machine":"T3D","op":"broadcast","p":8,"m":256}]' \
//	     localhost:8080/v1/estimate
//
// The merged response is byte-identical to what one worker would have
// answered for the whole batch. Failed sub-batches retry on the next
// live worker in ring order (liveness blends the front's own transport
// observations with the scraper's health view); POST /v1/reload rolls
// the fleet's registries one worker at a time, draining each worker's
// front-side gate first; GET /metrics serves the merged fleet view —
// every worker's series plus the front's own (front_requests_total,
// front_worker_requests_total, front_retries_total,
// front_rebalance_total). See internal/serve/front.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/fleet"
	"repro/internal/serve/front"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.String("workers", "",
			`comma-separated workers in ring order, each "name=url" (e.g. "w0=localhost:8081,w1=localhost:8082"); a url without a scheme gets http://`)
		timeout = flag.Duration("timeout", 30*time.Second, "per sub-request attempt bound")
		retries = flag.Int("retries", 0,
			"failover attempts per sub-batch beyond the first (0 = the full ladder: every other worker)")
		workerConc  = flag.Int("worker-concurrent", 8, "sub-requests in flight per worker")
		workerQueue = flag.Int("worker-queue", 64, "sub-requests queued per worker beyond the concurrency budget")
		interval    = flag.Duration("scrape-interval", 5*time.Second, "worker metrics scrape period (0 disables scraping)")
		scrapeTimeo = flag.Duration("scrape-timeout", 2*time.Second, "per-worker scrape timeout")
		drainTimeo  = flag.Duration("drain-timeout", 10*time.Second, "per-worker gate-drain bound during a rolling reload")
		reloadTimeo = flag.Duration("reload-timeout", 60*time.Second, "per-worker registry-rebuild bound during a rolling reload")
		quiet       = flag.Bool("quiet", false, "suppress startup logging")
		logLevel    = flag.String("log-level", "info", "structured log level (debug logs failover retries and liveness flips)")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetfront:", err)
		return 2
	}
	logger := obs.NewLogger(os.Stderr, level)

	ring, err := parseWorkers(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetfront:", err)
		return 2
	}

	reg := obs.NewRegistry()
	metrics := front.NewMetrics(reg, front.WorkerNames(ring))

	cfg := front.Config{
		Workers:          ring,
		Timeout:          *timeout,
		Retries:          *retries,
		WorkerConcurrent: *workerConc,
		WorkerQueue:      *workerQueue,
		DrainTimeout:     *drainTimeo,
		ReloadTimeout:    *reloadTimeo,
		Metrics:          metrics,
		Logger:           logger,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The front must exist before the scraper's liveness callback can
	// target it, but the callback fires only once Run starts, after both
	// are wired.
	var f *front.Front
	if *interval > 0 {
		targets := make([]fleet.Target, len(ring))
		for i, w := range ring {
			targets[i] = fleet.Target{Name: w.Name, URL: w.URL + "/metrics"}
		}
		scraper, err := fleet.New(fleet.Config{
			Targets:  targets,
			Interval: *interval,
			Timeout:  *scrapeTimeo,
			Logger:   logger,
			OnLiveness: func(instance string, up bool) {
				if f != nil {
					f.SetLive(instance, up)
				}
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleetfront:", err)
			return 2
		}
		cfg.Scraper = scraper
	}
	f, err = front.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetfront:", err)
		return 2
	}
	if cfg.Scraper != nil {
		go cfg.Scraper.Run(ctx)
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           f.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- httpServer.Shutdown(shutdownCtx)
	}()

	if !*quiet {
		fmt.Fprintf(os.Stderr, "fleetfront: sharding across %d workers on %s\n", len(ring), *addr)
	}
	if err := httpServer.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "fleetfront:", err)
		return 1
	}
	if err := <-done; err != nil {
		fmt.Fprintln(os.Stderr, "fleetfront: shutdown:", err)
		return 1
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr, "fleetfront: drained, bye")
	}
	return 0
}

// parseWorkers expands the -workers flag: "name=url" pairs in ring
// order, scheme filled in when missing. Names are required — they key
// the per-worker metrics and reload reports.
func parseWorkers(spec string) ([]front.Worker, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("no -workers given")
	}
	var out []front.Worker
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, u, ok := strings.Cut(item, "=")
		if !ok || strings.TrimSpace(name) == "" {
			return nil, fmt.Errorf("worker %q: want name=url", item)
		}
		u = strings.TrimSpace(u)
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		out = append(out, front.Worker{Name: strings.TrimSpace(name), URL: u})
	}
	return out, nil
}
