// Package repro_test holds the benchmark harness: one benchmark per
// table and figure of the paper's evaluation section, plus ablation
// benchmarks over the collective-algorithm choices DESIGN.md calls out.
//
// Wall-clock numbers measure the simulator; the reproduced quantity —
// the simulated collective time in µs — is attached to every benchmark
// as the "simulated-µs" metric, so `go test -bench` output carries the
// paper-comparable numbers.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/stap"
)

// benchCfg keeps benchmark iterations cheap while preserving the
// methodology (warm-up discard + timed loop + max-reduce).
var benchCfg = measure.Config{Warmup: 1, K: 3, Reps: 1, Seed: 1}

// reportSim attaches the simulated time as a benchmark metric.
func reportSim(b *testing.B, micros float64) {
	b.ReportMetric(micros, "simulated-µs")
}

// --- Fig. 1: startup latencies T0(p) ---------------------------------

func BenchmarkFig1_StartupLatency(b *testing.B) {
	for _, mach := range machine.All() {
		for _, op := range machine.Ops {
			p := 64
			b.Run(fmt.Sprintf("%s/%s/p=%d", mach.Name(), op, p), func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					last = measure.StartupLatency(mach, op, p, benchCfg)
				}
				reportSim(b, last)
			})
		}
	}
}

// --- Fig. 2: T(m, 32) vs message length ------------------------------

func BenchmarkFig2_MessageLengthSweep(b *testing.B) {
	for _, mach := range machine.All() {
		for _, m := range []int{16, 1024, 65536} {
			b.Run(fmt.Sprintf("%s/alltoall/m=%d", mach.Name(), m), func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					last = measure.MeasureOp(mach, machine.OpAlltoall, 32, m, benchCfg).Micros
				}
				reportSim(b, last)
			})
		}
	}
}

// --- Fig. 3: T(m, p) vs machine size, short and long messages --------

func BenchmarkFig3_MachineSizeSweep(b *testing.B) {
	for _, mach := range machine.All() {
		for _, m := range []int{16, 65536} {
			for _, p := range []int{8, 64} {
				b.Run(fmt.Sprintf("%s/broadcast/p=%d/m=%d", mach.Name(), p, m), func(b *testing.B) {
					var last float64
					for i := 0; i < b.N; i++ {
						last = measure.MeasureOp(mach, machine.OpBroadcast, p, m, benchCfg).Micros
					}
					reportSim(b, last)
				})
			}
		}
	}
}

// --- Fig. 4: startup/transmission breakdown --------------------------

func BenchmarkFig4_Breakdown(b *testing.B) {
	e := core.New(benchCfg, core.WithLengths(4, 1024))
	var rows []core.Fig4Row
	for i := 0; i < b.N; i++ {
		rows = e.Fig4()
	}
	// Report the paper's §7 headline: the Paragon total-exchange bar.
	for _, r := range rows {
		if r.Machine == "Paragon" && r.Op == machine.OpAlltoall {
			reportSim(b, r.Total)
		}
	}
}

// --- Fig. 5: aggregated bandwidths -----------------------------------

func BenchmarkFig5_AggregatedBandwidth(b *testing.B) {
	for _, mach := range machine.All() {
		b.Run(mach.Name()+"/alltoall/p=64", func(b *testing.B) {
			e := core.New(benchCfg,
				core.WithMachines(mach), core.WithLengths(4, 16384, 65536))
			var rows []core.Fig5Row
			for i := 0; i < b.N; i++ {
				rows = e.Fig5()
			}
			for _, r := range rows {
				if r.Op == machine.OpAlltoall && r.P == 64 {
					b.ReportMetric(r.MBs, "simulated-MB/s")
				}
			}
		})
	}
}

// --- Table 3: the full sweep + two-stage fit --------------------------

func BenchmarkTable3_FitExpressions(b *testing.B) {
	for _, mach := range machine.All() {
		b.Run(mach.Name(), func(b *testing.B) {
			e := core.New(benchCfg,
				core.WithMachines(mach), core.WithMaxNodes(32),
				core.WithLengths(4, 4096, 65536))
			for i := 0; i < b.N; i++ {
				fitted := e.Table3()
				if len(fitted[mach.Name()]) != len(machine.Ops) {
					b.Fatal("incomplete fit")
				}
			}
		})
	}
}

// --- Ablations: algorithm choices per operation -----------------------
// These quantify why the vendor implementations have the shapes the
// paper reports (e.g. what the Paragon would have gained from a Bruck
// total exchange for short messages).

// simTimeWith runs one collective under an explicit algorithm table and
// returns the completion time of the slowest rank in µs.
func simTimeWith(mach *machine.Machine, p int, algs mpi.Algorithms, body func(c *mpi.Comm)) float64 {
	cl := machine.NewCluster(mach, p, 1)
	var worst sim.Time
	err := mpi.RunWithAlgorithms(cl, algs, func(c *mpi.Comm) {
		body(c)
		if now := c.Proc().Now(); now > worst {
			worst = now
		}
	})
	if err != nil {
		panic(err)
	}
	return sim.Duration(worst).Micros()
}

func BenchmarkAblation_AlltoallAlgorithms(b *testing.B) {
	for _, alg := range []string{"linear", "pairwise", "xor", "bruck"} {
		for _, m := range []int{64, 65536} {
			b.Run(fmt.Sprintf("SP2/%s/m=%d", alg, m), func(b *testing.B) {
				mach := machine.SP2()
				algs := mpi.DefaultAlgorithms(mach)
				algs.Alltoall = alg
				var last float64
				for i := 0; i < b.N; i++ {
					last = simTimeWith(mach, 32, algs, func(c *mpi.Comm) {
						blocks := make([][]byte, c.Size())
						for j := range blocks {
							blocks[j] = make([]byte, m)
						}
						c.Alltoall(blocks)
					})
				}
				reportSim(b, last)
			})
		}
	}
}

func BenchmarkAblation_BcastAlgorithms(b *testing.B) {
	for _, alg := range []string{"linear", "binomial", "scatter-allgather", "pipelined"} {
		for _, m := range []int{1024, 65536} {
			b.Run(fmt.Sprintf("Paragon/%s/m=%d", alg, m), func(b *testing.B) {
				mach := machine.Paragon()
				algs := mpi.DefaultAlgorithms(mach)
				algs.Bcast = alg
				var last float64
				for i := 0; i < b.N; i++ {
					last = simTimeWith(mach, 64, algs, func(c *mpi.Comm) {
						var msg []byte
						if c.Rank() == 0 {
							msg = make([]byte, m)
						}
						c.Bcast(0, msg)
					})
				}
				reportSim(b, last)
			})
		}
	}
}

func BenchmarkAblation_BarrierAlgorithms(b *testing.B) {
	cases := []struct {
		mach *machine.Machine
		alg  string
	}{
		{machine.SP2(), "central"},
		{machine.SP2(), "tree"},
		{machine.SP2(), "dissemination"},
		{machine.T3D(), "hardware"},
	}
	for _, cse := range cases {
		b.Run(cse.mach.Name()+"/"+cse.alg, func(b *testing.B) {
			algs := mpi.DefaultAlgorithms(cse.mach)
			algs.Barrier = cse.alg
			var last float64
			for i := 0; i < b.N; i++ {
				last = simTimeWith(cse.mach, 64, algs, func(c *mpi.Comm) { c.Barrier() })
			}
			reportSim(b, last)
		})
	}
}

func BenchmarkAblation_GatherAlgorithms(b *testing.B) {
	for _, alg := range []string{"linear", "binomial"} {
		b.Run("Paragon/"+alg, func(b *testing.B) {
			mach := machine.Paragon()
			algs := mpi.DefaultAlgorithms(mach)
			algs.Gather = alg
			var last float64
			for i := 0; i < b.N; i++ {
				last = simTimeWith(mach, 64, algs, func(c *mpi.Comm) {
					c.Gather(0, make([]byte, 1024))
				})
			}
			reportSim(b, last)
		})
	}
}

func BenchmarkAblation_ScanAlgorithms(b *testing.B) {
	for _, alg := range []string{"linear", "recursive-doubling"} {
		b.Run("SP2/"+alg, func(b *testing.B) {
			mach := machine.SP2()
			algs := mpi.DefaultAlgorithms(mach)
			algs.Scan = alg
			var last float64
			for i := 0; i < b.N; i++ {
				last = simTimeWith(mach, 64, algs, func(c *mpi.Comm) {
					c.Scan(mpi.EncodeFloats(make([]float32, 16)), mpi.Sum, mpi.Float)
				})
			}
			reportSim(b, last)
		})
	}
}

// --- Simulator engine benchmarks --------------------------------------

func BenchmarkEngine_EventThroughput(b *testing.B) {
	k := sim.New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(1, tick)
		}
	}
	k.After(1, tick)
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkEngine_AlltoallMessages(b *testing.B) {
	// Raw messaging throughput: a 64-node pairwise exchange of 1 KB.
	for i := 0; i < b.N; i++ {
		err := mpi.Run(machine.T3D(), 64, 1, func(c *mpi.Comm) {
			blocks := make([][]byte, c.Size())
			for j := range blocks {
				blocks[j] = make([]byte, 1024)
			}
			c.Alltoall(blocks)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- STAP application benchmark ---------------------------------------

func BenchmarkSTAP_Pipeline(b *testing.B) {
	prm := stap.Params{Ranges: 256, Pulses: 64, Channels: 8, CFARThreshold: 12, DiagonalLoad: 1}
	for _, mach := range machine.All() {
		b.Run(mach.Name(), func(b *testing.B) {
			var last *stap.Result
			for i := 0; i < b.N; i++ {
				res, err := stap.Run(mach, 16, prm, nil, 1)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportSim(b, sim.Duration(last.Times.Total).Micros())
			b.ReportMetric(100*float64(last.Times.CommTime())/float64(last.Times.Total), "comm-%")
		})
	}
}
