package repro_test

import (
	"bytes"
	"os"
	"reflect"
	"testing"

	"repro/internal/estimate"
	"repro/internal/golden"
	"repro/internal/machine"
	"repro/internal/sweep"
)

func machineByName(t *testing.T, name string) *machine.Machine {
	t.Helper()
	m := machine.ByName(name)
	if m == nil {
		t.Fatalf("unknown machine %q", name)
	}
	return m
}

// The determinism suite proves the cold-path optimizations changed
// nothing but speed: sweep output and calibrated fits are byte-identical
// across worker counts AND against goldens captured from the
// pre-optimization engine (testdata/, regenerated only by
// cmd/goldengen).

var workerCounts = []int{1, 4, 8}

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	blob, err := os.ReadFile("testdata/" + name)
	if err != nil {
		t.Fatalf("missing golden (run `go run ./cmd/goldengen`): %v", err)
	}
	return blob
}

// TestSweepMatchesSeedAcrossWorkers runs the golden grid through the
// sim backend at several worker counts; every run must render byte-for-
// byte to the pre-optimization golden report.
func TestSweepMatchesSeedAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the golden grid several times")
	}
	want := readGolden(t, "golden_sweep_sim.md")
	scns, err := golden.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		runner := &sweep.Runner{Workers: w, Backend: estimate.Sim{Memo: estimate.NewSampleMemo()}}
		got, err := golden.Markdown(runner.Run(scns))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: sweep output diverged from the seed golden (len %d vs %d)",
				w, len(got), len(want))
		}
	}
}

// TestCalibrationMatchesSeedAcrossWorkers precalibrates every golden
// triple through pools of several sizes; the fitted expressions must
// serialize byte-for-byte to the pre-optimization golden file.
func TestCalibrationMatchesSeedAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrates the golden triples several times")
	}
	want := readGolden(t, "golden_expressions.json")
	for _, w := range workerCounts {
		c := golden.Calibrated()
		c.Memo = estimate.NewSampleMemo()
		c.Precalibrate(golden.Triples(), w)
		got, err := golden.ExpressionsJSON(golden.Expressions(c))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: calibrated expressions diverged from the seed golden", w)
		}
	}
}

// TestAdaptiveCalibrationDeterministicAcrossWorkers checks the adaptive
// planner separately: its fits legitimately differ from the full-grid
// goldens (that is the point), but they must not depend on worker count.
func TestAdaptiveCalibrationDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrates the golden triples twice")
	}
	fits := make([]map[string]string, 0, 2)
	for _, w := range []int{1, 8} {
		c := golden.Calibrated()
		c.Memo = estimate.NewSampleMemo()
		c.Planner = estimate.Planner{Adaptive: true}
		c.Precalibrate(golden.Triples(), w)
		flat := map[string]string{}
		for k, e := range golden.Expressions(c) {
			flat[k] = e.String()
		}
		fits = append(fits, flat)
	}
	if !reflect.DeepEqual(fits[0], fits[1]) {
		t.Fatal("adaptive calibration depends on worker count")
	}
}

// TestDefaultAliasSharesCalibration pins the memoization contract: the
// "default" triple resolves to the vendor variant and reuses its
// calibration instead of re-measuring.
func TestDefaultAliasSharesCalibration(t *testing.T) {
	c := golden.Calibrated()
	c.Memo = estimate.NewSampleMemo()
	mach := machineByName(t, "SP2")
	_ = c.Expression(mach, "broadcast", "binomial") // vendor default for bcast
	n := c.Memo.Len()
	if n == 0 {
		t.Fatal("calibration measured nothing")
	}
	_ = c.Expression(mach, "broadcast", "default")
	if got := c.Memo.Len(); got != n {
		t.Fatalf("default alias re-measured: memo grew %d -> %d", n, got)
	}
}
